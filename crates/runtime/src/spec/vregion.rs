//! Value-level regions: `{⟨i, v⟩}` sets exactly as §4 defines them.

use std::collections::BTreeMap;
use viz_geometry::{IndexSpace, Point};
use viz_region::redop::Value;

/// A region as the paper defines it: a set of `⟨point, value⟩` pairs with
/// unique points. The auxiliary operators of §5 are methods:
///
/// * `X/Y` — [`VRegion::restrict`]: the subset of `X` sharing points with `Y`
/// * `X\Y` — [`VRegion::without`]: the subset of `X` not sharing points
/// * `X ⊕ Y` — [`VRegion::oplus`]: union preferring `Y`'s values
#[derive(Clone, Debug, PartialEq, Default)]
pub struct VRegion {
    pairs: BTreeMap<Point, Value>,
}

impl VRegion {
    pub fn new() -> Self {
        Self::default()
    }

    /// `{⟨i, v⟩ | i ∈ dom}` with a constant value.
    pub fn fill(dom: &IndexSpace, v: Value) -> Self {
        VRegion {
            pairs: dom.points().map(|p| (p, v)).collect(),
        }
    }

    /// `{⟨i, f(i)⟩ | i ∈ dom}`.
    pub fn tabulate(dom: &IndexSpace, f: impl Fn(Point) -> Value) -> Self {
        VRegion {
            pairs: dom.points().map(|p| (p, f(p))).collect(),
        }
    }

    pub fn get(&self, p: Point) -> Option<Value> {
        self.pairs.get(&p).copied()
    }

    pub fn set(&mut self, p: Point, v: Value) {
        self.pairs.insert(p, v);
    }

    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (Point, Value)> + '_ {
        self.pairs.iter().map(|(p, v)| (*p, *v))
    }

    /// Is `p` in `dom(self)`?
    pub fn contains(&self, p: Point) -> bool {
        self.pairs.contains_key(&p)
    }

    /// `dom(X) ∩ dom(Y) = ∅`?
    pub fn disjoint(&self, other: &VRegion) -> bool {
        let (small, big) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        !small.pairs.keys().any(|p| big.contains(*p))
    }

    /// `X/Y = {⟨i, v⟩ ∈ X | i ∈ dom(Y)}`.
    pub fn restrict(&self, other: &VRegion) -> VRegion {
        VRegion {
            pairs: self
                .pairs
                .iter()
                .filter(|(p, _)| other.contains(**p))
                .map(|(p, v)| (*p, *v))
                .collect(),
        }
    }

    /// Restriction to an index-space domain.
    pub fn restrict_dom(&self, dom: &IndexSpace) -> VRegion {
        VRegion {
            pairs: self
                .pairs
                .iter()
                .filter(|(p, _)| dom.contains_point(**p))
                .map(|(p, v)| (*p, *v))
                .collect(),
        }
    }

    /// `X\Y = {⟨i, v⟩ ∈ X | i ∉ dom(Y)}`.
    pub fn without(&self, other: &VRegion) -> VRegion {
        VRegion {
            pairs: self
                .pairs
                .iter()
                .filter(|(p, _)| !other.contains(**p))
                .map(|(p, v)| (*p, *v))
                .collect(),
        }
    }

    /// `X ⊕ Y = X\Y ∪ Y` — union using `Y`'s values on shared points.
    pub fn oplus(&self, other: &VRegion) -> VRegion {
        let mut pairs = self.pairs.clone();
        for (p, v) in &other.pairs {
            pairs.insert(*p, *v);
        }
        VRegion { pairs }
    }

    /// Pointwise lift of a reduction operator:
    /// `f(X, Y) = {⟨i, f(vx, vy)⟩ | ⟨i, vx⟩ ∈ X, ⟨i, vy⟩ ∈ Y}` (§5).
    pub fn lift(&self, other: &VRegion, f: fn(Value, Value) -> Value) -> VRegion {
        VRegion {
            pairs: self
                .pairs
                .iter()
                .filter_map(|(p, vx)| other.get(*p).map(|vy| (*p, f(*vx, vy))))
                .collect(),
        }
    }

    /// The domain as an index space.
    pub fn domain(&self) -> IndexSpace {
        IndexSpace::from_points(self.pairs.keys().copied())
    }
}

impl FromIterator<(Point, Value)> for VRegion {
    fn from_iter<I: IntoIterator<Item = (Point, Value)>>(iter: I) -> Self {
        VRegion {
            pairs: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vr(pairs: &[(i64, f64)]) -> VRegion {
        pairs.iter().map(|(x, v)| (Point::p1(*x), *v)).collect()
    }

    #[test]
    fn restrict_keeps_own_values() {
        let x = vr(&[(0, 1.0), (1, 2.0), (2, 3.0)]);
        let y = vr(&[(1, 99.0), (2, 98.0), (3, 97.0)]);
        assert_eq!(x.restrict(&y), vr(&[(1, 2.0), (2, 3.0)]));
    }

    #[test]
    fn without_removes_shared_points() {
        let x = vr(&[(0, 1.0), (1, 2.0)]);
        let y = vr(&[(1, 0.0)]);
        assert_eq!(x.without(&y), vr(&[(0, 1.0)]));
    }

    #[test]
    fn oplus_prefers_right_operand() {
        let x = vr(&[(0, 1.0), (1, 2.0)]);
        let y = vr(&[(1, 9.0), (2, 8.0)]);
        assert_eq!(x.oplus(&y), vr(&[(0, 1.0), (1, 9.0), (2, 8.0)]));
    }

    #[test]
    fn restrict_without_partition_x() {
        let x = vr(&[(0, 1.0), (1, 2.0), (2, 3.0)]);
        let y = vr(&[(1, 0.0), (5, 0.0)]);
        let a = x.restrict(&y);
        let b = x.without(&y);
        assert_eq!(a.len() + b.len(), x.len());
        assert!(a.disjoint(&b));
        assert_eq!(b.oplus(&a), x);
    }

    #[test]
    fn lift_applies_pointwise() {
        let x = vr(&[(0, 1.0), (1, 2.0)]);
        let y = vr(&[(1, 10.0), (2, 20.0)]);
        assert_eq!(x.lift(&y, |a, b| a + b), vr(&[(1, 12.0)]));
    }

    #[test]
    fn fill_and_tabulate() {
        let dom = IndexSpace::span(0, 3);
        assert_eq!(VRegion::fill(&dom, 7.0).len(), 4);
        let t = VRegion::tabulate(&dom, |p| p.x as f64 * 2.0);
        assert_eq!(t.get(Point::p1(3)), Some(6.0));
        assert!(t.domain().same_points(&dom));
    }
}
