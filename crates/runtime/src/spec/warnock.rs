//! Figure 9, verbatim: Warnock's algorithm at the value level.

use crate::spec::program::{SpecAlgorithm, SpecProgram};
use crate::spec::vregion::VRegion;
use viz_geometry::IndexSpace;
use viz_region::{Privilege, RedOpRegistry};

/// An equivalence set: a `(region, history)` pair where every operation in
/// the history is relevant to every element of the region.
#[derive(Clone)]
pub(crate) struct EqSet {
    pub dom: IndexSpace,
    pub hist: Vec<(Privilege, VRegion)>,
}

/// `S` is a set of equivalence sets.
#[derive(Default)]
pub struct SpecWarnock {
    pub(crate) sets: Vec<EqSet>,
}

impl SpecWarnock {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Fig 9's `refine`: split any equivalence set with a non-trivial
    /// overlap with `R` into `R'/R` and `R'\R`.
    pub(crate) fn refine(&mut self, dom: &IndexSpace) {
        let mut out = Vec::with_capacity(self.sets.len());
        for es in self.sets.drain(..) {
            if !es.dom.overlaps(dom) {
                out.push(es); // dom(R') ∩ dom(R) = ∅
            } else if dom.contains(&es.dom) {
                out.push(es); // dom(R) = dom(R') (or R' ⊆ R: already relevant)
            } else {
                // S' := S' ∪ {⟨R'/R, H⟩, ⟨R'\R, H⟩}
                let inside = es.dom.intersect(dom);
                let outside = es.dom.subtract(dom);
                out.push(EqSet {
                    dom: inside,
                    hist: es.hist.clone(),
                });
                out.push(EqSet {
                    dom: outside,
                    hist: es.hist,
                });
            }
        }
        self.sets = out;
    }

    /// The painter's algorithm applied within one equivalence set.
    fn paint(es: &EqSet, redops: &RedOpRegistry) -> VRegion {
        let mut r = VRegion::new();
        for (p, r_prime) in &es.hist {
            match p {
                Privilege::ReadWrite => {
                    r = r.oplus(&r_prime.restrict_dom(&es.dom));
                }
                Privilege::Reduce(op) => {
                    let folded = r.lift(r_prime, redops.get(*op).fold);
                    r = r.oplus(&folded);
                }
                Privilege::Read => {}
            }
        }
        r
    }

    pub(crate) fn materialize_impl(
        &mut self,
        privilege: Privilege,
        dom: &IndexSpace,
        redops: &RedOpRegistry,
    ) -> VRegion {
        // S' := refine(R, S)
        self.refine(dom);
        // Es := {⟨X, H⟩ ∈ S' | dom(X) ⊆ dom(R)}; R := ∅; union the pieces.
        let mut r = VRegion::new();
        for es in &self.sets {
            if !dom.contains(&es.dom) {
                continue;
            }
            let x = match privilege {
                Privilege::Reduce(op) => VRegion::fill(&es.dom, redops.identity(op)),
                _ => Self::paint(es, redops),
            };
            r = r.oplus(&x);
        }
        r
    }

    pub(crate) fn commit_impl(&mut self, privilege: Privilege, region: VRegion) {
        let rdom = region.domain();
        for es in &mut self.sets {
            // if R'/R = R' — the set is inside the committed region.
            if rdom.contains(&es.dom) {
                let slice = region.restrict_dom(&es.dom); // ⟨P, R/R'⟩
                if privilege.is_write() {
                    es.hist = vec![(privilege, slice)];
                } else {
                    es.hist.push((privilege, slice));
                }
            }
            // else: refine guarantees dom(R) ∩ dom(R') = ∅ — keep as-is.
        }
    }
}

impl SpecAlgorithm for SpecWarnock {
    fn name(&self) -> &'static str {
        "spec-warnock"
    }

    fn init(&mut self, program: &SpecProgram) {
        // Initially one equivalence set: ⟨A, [⟨read-write, A⟩]⟩.
        self.sets = vec![EqSet {
            dom: program.domain.clone(),
            hist: vec![(Privilege::ReadWrite, program.initial.clone())],
        }];
    }

    fn materialize(
        &mut self,
        privilege: Privilege,
        dom: &IndexSpace,
        redops: &RedOpRegistry,
    ) -> VRegion {
        self.materialize_impl(privilege, dom, redops)
    }

    fn commit(&mut self, privilege: Privilege, region: VRegion, _redops: &RedOpRegistry) {
        self.commit_impl(privilege, region);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::program::{run_program, SpecTask};
    use viz_geometry::Point;

    fn dom(lo: i64, hi: i64) -> IndexSpace {
        IndexSpace::span(lo, hi)
    }

    #[test]
    fn refinement_splits_straddling_sets() {
        let d = dom(0, 9);
        let prog = SpecProgram::new(d.clone(), VRegion::fill(&d, 0.0));
        let mut alg = SpecWarnock::new();
        alg.init(&prog);
        assert_eq!(alg.num_sets(), 1);
        alg.refine(&dom(3, 6));
        assert_eq!(alg.num_sets(), 2, "split into [3,6] and the rest");
        // Refining with the same region again adds nothing.
        alg.refine(&dom(3, 6));
        assert_eq!(alg.num_sets(), 2);
        // An overlapping region splits further.
        alg.refine(&dom(5, 8));
        assert!(alg.num_sets() > 2);
        // Invariant: the sets partition the collection.
        let total: u64 = alg.sets.iter().map(|e| e.dom.volume()).sum();
        assert_eq!(total, 10);
        for (i, a) in alg.sets.iter().enumerate() {
            for b in &alg.sets[i + 1..] {
                assert!(!a.dom.overlaps(&b.dom));
            }
        }
    }

    #[test]
    fn write_resets_set_history() {
        let redops = RedOpRegistry::new();
        let d = dom(0, 3);
        let mut prog = SpecProgram::new(d.clone(), VRegion::fill(&d, 5.0));
        prog.push(SpecTask::new(
            "w",
            vec![(Privilege::ReadWrite, dom(0, 3))],
            |rs| {
                let pts: Vec<_> = rs[0].iter().map(|(p, _)| p).collect();
                for p in pts {
                    rs[0].set(p, 7.0);
                }
            },
        ));
        let mut alg = SpecWarnock::new();
        let out = run_program(&mut alg, &prog, &redops);
        assert_eq!(out.get(Point::p1(2)), Some(7.0));
        assert_eq!(
            alg.sets[0].hist.len(),
            1,
            "history is precise: only the most recent write (lines 30-31)"
        );
    }

    #[test]
    fn matches_painter_on_mixed_program() {
        use crate::spec::painter::SpecPainter;
        let redops = RedOpRegistry::new();
        let d = dom(0, 15);
        let mut prog = SpecProgram::new(d.clone(), VRegion::tabulate(&d, |p| p.x as f64));
        prog.push(SpecTask::new(
            "w1",
            vec![(Privilege::ReadWrite, dom(0, 7))],
            |rs| {
                let pts: Vec<_> = rs[0].iter().map(|(p, _)| p).collect();
                for p in pts {
                    let v = rs[0].get(p).unwrap();
                    rs[0].set(p, v * 2.0);
                }
            },
        ));
        prog.push(SpecTask::new(
            "r1",
            vec![(Privilege::Reduce(RedOpRegistry::SUM), dom(4, 11))],
            |rs| {
                let pts: Vec<_> = rs[0].iter().map(|(p, _)| p).collect();
                for p in pts {
                    let v = rs[0].get(p).unwrap();
                    rs[0].set(p, v + 3.0);
                }
            },
        ));
        prog.push(SpecTask::new(
            "w2",
            vec![(Privilege::ReadWrite, dom(6, 9))],
            |rs| {
                let pts: Vec<_> = rs[0].iter().map(|(p, _)| p).collect();
                for p in pts {
                    rs[0].set(p, -1.0);
                }
            },
        ));
        let a = run_program(&mut SpecPainter::new(), &prog, &redops);
        let b = run_program(&mut SpecWarnock::new(), &prog, &redops);
        assert_eq!(a, b);
    }
}
