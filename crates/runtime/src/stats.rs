//! The one stats front door: [`crate::Runtime::stats`] returns a
//! [`RuntimeStats`] snapshot unifying what used to require three ad-hoc
//! accessors (an engine-state getter for [`StateSize`] — which itself
//! carries the interner's `AlgebraStats` roll-up — `pipeline_metrics` for
//! the submission-plane counters, and the trace statistics getters) plus
//! the history-GC and coarsening counters.
//!
//! Everything in the snapshot is plain data (`Clone`, `Debug`): probes and
//! benches can take one, drop the runtime borrow, and format at leisure.

use crate::engine::StateSize;
use crate::pipeline::PipelineMetrics;

/// One coherent snapshot of the runtime's observable counters, taken at a
/// drain point (every queued launch has committed).
#[non_exhaustive]
#[derive(Clone, Debug, Default)]
pub struct RuntimeStats {
    /// Engine label (`"Paint"`, `"Warnock"`, ...).
    pub engine: &'static str,
    /// Tasks committed so far across every producer, fences included.
    pub tasks: u64,
    /// Launches currently retained in the commit ledger (`== tasks` until
    /// history GC retires a prefix).
    pub retained: u64,
    /// The history-GC watermark: every task id below it has retired.
    pub watermark: u32,
    /// Engine-retained analysis state, including the algebra/interner
    /// roll-up.
    pub state: StateSize,
    /// History-GC and coarsening counters.
    pub gc: GcStats,
    /// Dependence-DAG shape and tag-storage footprint.
    pub dag: DagStats,
    /// Trace machinery counters (manual and auto).
    pub tracing: TracingStats,
    /// Submission-plane counters (`None` in synchronous mode).
    pub pipeline: Option<PipelineStats>,
}

/// History-GC and coarsening counters (see [`crate::config::GcConfig`]).
#[non_exhaustive]
#[derive(Clone, Copy, Debug, Default)]
pub struct GcStats {
    pub enabled: bool,
    pub coarsen: bool,
    /// Collection sweeps run.
    pub collections: u64,
    /// Sweeps whose floor was clamped by tracing-aware pinning.
    pub pins: u64,
    /// Ledger entries retired below the watermark.
    pub retired_launches: u64,
    /// Ancestor-tag words freed from the DAG's bitset window.
    pub tag_words_freed: u64,
    /// Per-(root,field) history entries dropped by engine sweeps.
    pub history_entries: u64,
    /// Dead equivalence sets reclaimed.
    pub equivalence_sets: u64,
    /// Unreachable composite views dropped.
    pub composite_views: u64,
    /// Spatial-index nodes reclaimed.
    pub index_nodes: u64,
    /// Stale memoization entries dropped.
    pub memo_entries: u64,
    /// Sibling-set merges performed by coarsening.
    pub coarsen_merges: u64,
}

/// Dependence-DAG shape and precedence-tag footprint.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, Default)]
pub struct DagStats {
    /// Tasks pushed (never shrinks; retirement only frees tag rows).
    pub tasks: u64,
    /// Dependence edges recorded.
    pub edges: u64,
    /// 64-bit words currently held by the ragged ancestor-bitset window.
    pub tag_words: u64,
    /// Floor below which tag rows were freed by history GC.
    pub retired_floor: u32,
}

/// Trace-machinery counters (manual `begin_trace`/`end_trace` regions and
/// the auto tracer).
#[non_exhaustive]
#[derive(Clone, Copy, Debug, Default)]
pub struct TracingStats {
    /// Launches whose analysis was synthesized from a template.
    pub replayed_launches: u64,
    /// Repeats promoted by the auto tracer.
    pub auto_promotions: u64,
    /// Auto traces demoted back to normal analysis.
    pub auto_demotions: u64,
    /// Trace violations observed (each demotes the offending trace).
    pub violations: u64,
    /// Current size of the rebase interval map.
    pub rebase_ranges: u64,
}

/// A plain-data snapshot of [`PipelineMetrics`] (the live handle stays
/// available from [`crate::Runtime::pipeline_metrics`] for code that needs
/// to watch counters move).
#[non_exhaustive]
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineStats {
    pub submitted: u64,
    pub retired: u64,
    pub stalls: u64,
    pub stalled_ns: u64,
    pub max_depth: u64,
    pub combines: u64,
    pub combined_specs: u64,
    pub max_combine: u64,
    pub multi_ring_combines: u64,
    pub rings: u64,
}

impl PipelineStats {
    pub(crate) fn snapshot(m: &PipelineMetrics) -> Self {
        PipelineStats {
            submitted: m.submitted(),
            retired: m.retired(),
            stalls: m.stalls(),
            stalled_ns: m.stalled_ns(),
            max_depth: m.max_depth(),
            combines: m.combines(),
            combined_specs: m.combined_specs(),
            max_combine: m.max_combine(),
            multi_ring_combines: m.multi_ring_combines(),
            rings: m.rings() as u64,
        }
    }
}
