//! Task launches and region requirements (paper §4).

use crate::instance::PhysicalRegion;
use std::fmt;
use std::sync::Arc;
use viz_region::{FieldId, Privilege, RegionId};
use viz_sim::NodeId;

/// Identifies a task launch. Task ids are assigned in **program order** —
/// the sequential-semantics "global clock" of §3.1 — so `TaskId` order *is*
/// the order reductions must be folded in to reproduce sequential results.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl TaskId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One region argument of a task: *which* data (a region and a field) and
/// *how* it is accessed (a privilege). The region names only the domain; the
/// runtime fills in correct values (§4).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RegionRequirement {
    pub region: RegionId,
    pub field: FieldId,
    pub privilege: Privilege,
}

impl RegionRequirement {
    pub fn new(region: RegionId, field: FieldId, privilege: Privilege) -> Self {
        RegionRequirement {
            region,
            field,
            privilege,
        }
    }

    pub fn read(region: RegionId, field: FieldId) -> Self {
        Self::new(region, field, Privilege::Read)
    }

    pub fn read_write(region: RegionId, field: FieldId) -> Self {
        Self::new(region, field, Privilege::ReadWrite)
    }

    pub fn reduce(region: RegionId, field: FieldId, op: viz_region::ReductionOpId) -> Self {
        Self::new(region, field, Privilege::Reduce(op))
    }
}

/// The function a task runs, given one [`PhysicalRegion`] per requirement
/// (in requirement order). Bodies must be deterministic for the
/// sequential-semantics guarantee to be observable.
pub type TaskBody = Arc<dyn Fn(&mut [PhysicalRegion]) + Send + Sync>;

/// A recorded task launch.
#[derive(Clone)]
pub struct TaskLaunch {
    pub id: TaskId,
    pub name: String,
    /// The node (processor) this task is mapped to.
    pub node: NodeId,
    pub reqs: Vec<RegionRequirement>,
    /// Modeled execution duration on the target processor, for the timed
    /// executor. Ignored by the value executor.
    pub duration_ns: u64,
}

impl fmt::Debug for TaskLaunch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}:{}@n{} {:?}",
            self.id,
            self.name,
            self.node,
            self.reqs
                .iter()
                .map(|r| (r.region, r.field, r.privilege))
                .collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_region::{RedOpRegistry, ReductionOpId};

    #[test]
    fn task_ids_order_by_program_order() {
        assert!(TaskId(0) < TaskId(1));
        assert_eq!(TaskId(5).index(), 5);
    }

    #[test]
    fn requirement_constructors() {
        let r = RegionId(3);
        let f = FieldId(1);
        assert_eq!(RegionRequirement::read(r, f).privilege, Privilege::Read);
        assert_eq!(
            RegionRequirement::read_write(r, f).privilege,
            Privilege::ReadWrite
        );
        assert_eq!(
            RegionRequirement::reduce(r, f, RedOpRegistry::SUM).privilege,
            Privilege::Reduce(ReductionOpId(0))
        );
    }
}
