//! Dynamic tracing: memoization of the dependence/coherence analysis
//! (Lee et al., "Dynamic Tracing: Memoization of Task Graphs for Dynamic
//! Task-Based Runtimes" — the paper's reference \[15\]).
//!
//! The evaluation of the visibility paper *disables* tracing ("these
//! experiments do not measure Legion's peak performance, but rather the
//! performance of the different coherence algorithms", §8). This module
//! implements it as the natural extension: applications wrap the body of a
//! repetitive loop in [`crate::Runtime::begin_trace`] /
//! [`crate::Runtime::end_trace`]; the runtime
//!
//! 1. analyzes the first instance normally (warm-up: partitions are
//!    discovered, equivalence sets refined, views built);
//! 2. analyzes and *records* the second instance — by then the analysis is
//!    in steady state, so every cross-instance reference lands in the
//!    immediately preceding instance;
//! 3. **replays** instances three onward: launches are validated against
//!    the recorded signature and their dependences/plans are synthesized by
//!    shifting the recorded ones — the visibility engine is not consulted
//!    at all.
//!
//! Soundness rests on instances being *identical* (validated launch by
//! launch; a mismatch is a [`TraceViolation`] — the runtime demotes the
//! trace and recaptures, it never aborts) and *contiguous* (anything
//! launched between instances invalidates the template, which is then
//! recaptured). Because replays do not update the engine's state, the
//! runtime rebases any later engine result that references the recorded
//! instance onto the final replayed instance — valid precisely because the
//! instances are identical.
//!
//! Two properties keep replay O(1) per launch:
//!
//! * Template results are stored behind [`std::sync::Arc`] and **never
//!   deep-cloned on the replay path**: a replayed launch stores the `Arc`
//!   plus a [`TaskShift`] computed once per instance; consumers apply the
//!   shift lazily when they read task references out of the plan.
//! * The rebase map is a sorted, non-overlapping interval map: each
//!   completed replay instance *supersedes* the previous mapping of its
//!   recorded window, so the map stays O(active templates) no matter how
//!   many instances replay (see `push_rebase`).
//!
//! Traces also form without annotations: when auto-tracing is enabled, the
//! [`crate::autotrace::AutoTracer`] watches the launch stream and promotes
//! detected repeats into the same state machine (`Mode::AutoCapture` /
//! `Mode::AutoReplay`), with a demotion path back to normal analysis when
//! the prediction diverges.

use crate::autotrace::{AutoSig, AutoTracer};
use crate::error::RuntimeError;
use crate::plan::{AnalysisResult, Source, StoredResult, TaskShift};
use crate::task::{RegionRequirement, TaskId};
use std::sync::Arc;
use viz_geometry::{FxHashMap, IndexSpace};
use viz_region::{FieldId, Privilege, RegionForest, RegionId};
use viz_sim::NodeId;

/// Application-chosen trace identifier. Ids with [`TraceId::AUTO_BIT`] set
/// are reserved for traces promoted by the auto-tracer.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TraceId(pub u32);

impl TraceId {
    /// High bit marks runtime-generated (auto-detected) traces.
    pub const AUTO_BIT: u32 = 1 << 31;

    /// Was this trace detected by the auto-tracer (as opposed to an
    /// explicit `begin_trace` annotation)?
    pub fn is_auto(self) -> bool {
        self.0 & Self::AUTO_BIT != 0
    }
}

/// One recorded launch of a trace template. The analysis result is shared
/// (`Arc`) with every replayed instance — replay never clones it.
#[derive(Clone)]
pub(crate) struct TemplateEntry {
    pub node: NodeId,
    pub reqs: Vec<RegionRequirement>,
    pub result: Arc<AnalysisResult>,
}

/// A captured trace: the launches of one steady-state instance, with their
/// analysis results, based at `base`.
pub(crate) struct Template {
    pub base: u32,
    pub entries: Vec<TemplateEntry>,
}

impl Template {
    pub fn len(&self) -> u32 {
        self.entries.len() as u32
    }

    /// The [`TaskShift`] mapping this template onto an instance starting at
    /// `new_base`: recorded references into `[base - len, base + len)`
    /// (the recorded instance and its immediate predecessor) move with the
    /// instance; pre-trace references stay absolute.
    pub fn shift_to(&self, new_base: u32) -> TaskShift {
        let len = self.len();
        TaskShift {
            lo: self.base.saturating_sub(len),
            hi: self.base + len,
            delta: new_base - self.base,
        }
    }
}

#[derive(Default)]
pub(crate) struct TraceState {
    /// Completed (analyzed) instances so far.
    pub instances: u32,
    pub template: Option<Template>,
    /// Task id one past the end of the last completed instance (for the
    /// contiguity check).
    pub last_end: u32,
}

/// Why a trace prediction failed (see [`TraceViolation`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Requirement `index` of the launch differs from the recording (a
    /// count mismatch reports the first index past the shorter list).
    RequirementMismatch { index: u32 },
    /// The launch targets a different node than the recording.
    NodeMismatch { recorded: NodeId, got: NodeId },
    /// More launches arrived than the recorded instance holds.
    ExtraLaunch { recorded_len: u32 },
    /// `end_trace` arrived before the instance replayed completely.
    ShortInstance { recorded_len: u32 },
    /// A fence or an explicit trace annotation interrupted the instance.
    Interrupted,
}

/// A structured trace-violation report: which trace diverged, at which
/// launch of the instance, and how. Violations demote the trace (recapture
/// for annotated traces, back to observation for auto traces); they never
/// abort the program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceViolation {
    pub id: TraceId,
    /// Index of the diverging launch within the instance.
    pub cursor: u32,
    pub kind: ViolationKind,
}

/// What the in-progress instance is doing.
pub(crate) enum Mode {
    /// First instance of an annotated trace: analyze normally.
    Warmup,
    /// Second instance of an annotated trace: analyze and record.
    Capture,
    /// Replaying an annotated trace's template.
    Replay,
    /// Recording a speculated repeat: each launch is validated against the
    /// predicted signatures *before* it is analyzed and recorded.
    AutoCapture { predicted: Vec<AutoSig> },
    /// One more analyzed instance after auto-capture: each result is
    /// compared against the template modulo the instance shift. Signatures
    /// repeating does not imply the *analysis* repeats — pending reductions
    /// can accumulate across instances, for example — and unlike an
    /// annotated trace there is no user promise to lean on. Only a
    /// shift-stationary instance is promoted to replay.
    AutoVerify,
    /// Replaying an auto-detected template; wraps to a new instance every
    /// `len` launches (auto traces have no explicit `end_trace`).
    AutoReplay,
}

pub(crate) struct ActiveTrace {
    pub id: TraceId,
    /// First task id of the current instance.
    pub base: u32,
    pub cursor: u32,
    pub mode: Mode,
    /// Entries recorded by this instance (when capturing).
    pub recording: Vec<TemplateEntry>,
    /// The shift applied to replayed results of this instance (computed
    /// once per instance, not per launch).
    pub shift: TaskShift,
    /// A demoted annotated trace: the rest of the instance is analyzed
    /// normally and the instance does not count toward warm-up/capture.
    pub demoted: bool,
}

impl ActiveTrace {
    fn is_auto(&self) -> bool {
        self.id.is_auto()
    }
}

/// A promotion waiting for its first launch: capture begins at task
/// `base` (the launch right after the detection point).
struct PendingAuto {
    id: TraceId,
    base: u32,
    predicted: Vec<AutoSig>,
}

/// What the runtime should do with the next launch.
pub(crate) enum TraceAction {
    /// Not in a trace (or warming up / capturing): run the engine. The
    /// bool says whether the result must be recorded into the template.
    Analyze { record: bool },
    /// Replay: the recorded result (shared, not cloned) plus the shift
    /// mapping it onto this instance.
    Replay {
        result: Arc<AnalysisResult>,
        shift: TaskShift,
    },
    /// The launch diverges from the prediction: the runtime must call
    /// [`Tracing::demote`] and then analyze the launch normally.
    Violation(TraceViolation),
}

/// The runtime's tracing bookkeeping.
#[derive(Default)]
pub(crate) struct Tracing {
    states: FxHashMap<TraceId, TraceState>,
    active: Option<ActiveTrace>,
    /// Template of the current auto-detected trace (auto traces are
    /// one-shot: a demotion discards the template and detection restarts).
    auto_template: Option<Template>,
    /// Online repeat detector (None when auto-tracing is disabled).
    auto: Option<AutoTracer>,
    pending_auto: Option<PendingAuto>,
    next_auto_id: u32,
    /// Sorted, non-overlapping ranges: later engine references to a task in
    /// `start..end` move by `shift` (the distance from the recorded
    /// instance to its last replayed one).
    rebases: Vec<(u32, u32, u32)>,
    /// Replays cut short leave a soundness hazard the rebase map cannot
    /// express: the engine's frozen state references the *unreplayed
    /// suffix* of the recorded window, whose entries superseded the
    /// replayed prefix's reads and writes. A later raw reference into
    /// `suffix_lo..suffix_hi` (recorded ids, checked before rebasing)
    /// orders the launch after the previous instance but not after the
    /// aborted instance's prefix — so it must additionally depend on
    /// `prefix_lo..prefix_hi` (the replayed tasks of that instance).
    /// Entries: `(suffix_lo, suffix_hi, prefix_lo, prefix_hi)`.
    hazards: Vec<(u32, u32, u32, u32)>,
    /// Every violation observed, in program order.
    violations: Vec<TraceViolation>,
    /// Launches synthesized from templates (statistics).
    pub replayed_launches: u64,
    /// Auto-tracer promotions (detected repeats) and demotions.
    pub auto_promotions: u64,
    pub auto_demotions: u64,
}

/// Is one captured instance *self-superseding* — does replaying it with a
/// shift-rebase preserve every future analysis exactly?
///
/// Replay freezes the engine's retained state at the verification
/// instance; the rebase map then translates stale references onto the
/// latest replayed instance. That translation is exact iff the state is
/// *shift-stationary*: each instance must occlude everything its
/// predecessor left visible. A sufficient, signature-checkable condition:
/// per `(root region, field)`, the union of the instance's write
/// footprints covers every region the instance touches. Then every read
/// epoch, write frontier, and pending reduction an instance creates is
/// superseded wholesale by the next instance's writes. Without coverage,
/// entries *accumulate* (a reduction into cells the loop never reads or
/// overwrites stays pending forever; a read of a constant field leaves an
/// unoccluded epoch per instance) and a post-trace task would need
/// references to every skipped instance — which a shift can't synthesize.
fn instance_is_self_superseding(entries: &[TemplateEntry], forest: &RegionForest) -> bool {
    let mut writes: FxHashMap<(RegionId, FieldId), IndexSpace> = FxHashMap::default();
    for e in entries {
        for r in &e.reqs {
            if matches!(r.privilege, Privilege::ReadWrite) {
                let dom = forest.domain(r.region);
                writes
                    .entry((forest.root_of(r.region), r.field))
                    .and_modify(|w| *w = w.union(dom))
                    .or_insert_with(|| dom.clone());
            }
        }
    }
    entries.iter().all(|e| {
        e.reqs.iter().all(|r| {
            matches!(r.privilege, Privilege::ReadWrite)
                || writes
                    .get(&(forest.root_of(r.region), r.field))
                    .is_some_and(|w| w.contains(forest.domain(r.region)))
        })
    })
}

/// Insert `[start, end) -> +shift` into the sorted interval map,
/// superseding any overlapping older mapping (trimming partial overlaps)
/// and coalescing adjacent ranges with equal shifts. A zero shift clears
/// the range. Keeps the map O(active templates): each completed replay
/// instance *replaces* the previous mapping of its window instead of
/// accumulating alongside it.
fn push_rebase(rebases: &mut Vec<(u32, u32, u32)>, start: u32, end: u32, shift: u32) {
    if start >= end {
        return;
    }
    let mut out: Vec<(u32, u32, u32)> = Vec::with_capacity(rebases.len() + 2);
    for &(s, e, sh) in rebases.iter() {
        if e <= start || s >= end {
            out.push((s, e, sh));
            continue;
        }
        if s < start {
            out.push((s, start, sh));
        }
        if e > end {
            out.push((end, e, sh));
        }
    }
    if shift > 0 {
        out.push((start, end, shift));
    }
    out.sort_unstable_by_key(|r| r.0);
    let mut merged: Vec<(u32, u32, u32)> = Vec::with_capacity(out.len());
    for r in out {
        match merged.last_mut() {
            Some(last) if last.1 == r.0 && last.2 == r.2 => last.1 = r.1,
            _ => merged.push(r),
        }
    }
    *rebases = merged;
}

/// Classify how a launch differs from its recorded counterpart.
fn mismatch_kind(
    want_node: NodeId,
    want_reqs: &[RegionRequirement],
    node: NodeId,
    reqs: &[RegionRequirement],
) -> ViolationKind {
    if want_node != node {
        return ViolationKind::NodeMismatch {
            recorded: want_node,
            got: node,
        };
    }
    let index = want_reqs
        .iter()
        .zip(reqs.iter())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| want_reqs.len().min(reqs.len()));
    ViolationKind::RequirementMismatch {
        index: index as u32,
    }
}

impl Tracing {
    pub fn new(auto: Option<AutoTracer>) -> Self {
        Tracing {
            auto,
            ..Tracing::default()
        }
    }

    pub fn begin(&mut self, id: TraceId, next_task: u32) -> Result<(), RuntimeError> {
        if let Some(active) = &self.active {
            if !active.is_auto() {
                return Err(RuntimeError::NestedTrace {
                    active: active.id,
                    requested: id,
                });
            }
            // An explicit annotation takes precedence over a speculated
            // auto trace.
            self.demote_auto();
        }
        self.pending_auto = None;
        if let Some(auto) = &mut self.auto {
            auto.reset();
        }
        let st = self.states.entry(id).or_default();
        // Replay requires a template and contiguity: nothing may have been
        // launched since the previous instance ended.
        let replaying = st.template.is_some() && st.instances >= 2 && st.last_end == next_task;
        if !replaying && st.template.is_some() && st.last_end != next_task {
            // Intervening launches changed the engine state: the template
            // no longer describes reality. Recapture from scratch.
            st.template = None;
            st.instances = 0;
        }
        let (mode, shift) = if replaying {
            let t = st.template.as_ref().unwrap();
            (Mode::Replay, t.shift_to(next_task))
        } else if st.instances == 1 {
            (Mode::Capture, TaskShift::IDENTITY)
        } else {
            (Mode::Warmup, TaskShift::IDENTITY)
        };
        self.active = Some(ActiveTrace {
            id,
            base: next_task,
            cursor: 0,
            mode,
            recording: Vec::new(),
            shift,
            demoted: false,
        });
        Ok(())
    }

    /// Decide how to handle a launch. For replays, validates the signature
    /// and hands back the shared recorded result; for auto-captures,
    /// validates the prediction; outside traces, feeds the repeat detector.
    pub fn on_launch(
        &mut self,
        node: NodeId,
        reqs: &[RegionRequirement],
        next_task: u32,
    ) -> TraceAction {
        if self.active.is_none() {
            if let Some(p) = self.pending_auto.take() {
                if p.base == next_task {
                    self.active = Some(ActiveTrace {
                        id: p.id,
                        base: next_task,
                        cursor: 0,
                        mode: Mode::AutoCapture {
                            predicted: p.predicted,
                        },
                        recording: Vec::new(),
                        shift: TaskShift::IDENTITY,
                        demoted: false,
                    });
                } else if let Some(auto) = &mut self.auto {
                    // Something other than a launch (a fence) intervened:
                    // the prediction no longer lines up with the id stream.
                    auto.reset();
                }
            }
        }
        let Some(active) = self.active.as_mut() else {
            // Observation: feed the detector; a detected repeat schedules
            // capture to start with the *next* launch.
            if let Some(auto) = &mut self.auto {
                if let Some(predicted) = auto.observe(node, reqs) {
                    let id = TraceId(TraceId::AUTO_BIT | self.next_auto_id);
                    self.next_auto_id += 1;
                    self.auto_promotions += 1;
                    if viz_profile::enabled() {
                        viz_profile::instant(viz_profile::EventKind::TraceDetect {
                            trace: id.0,
                            len: predicted.len() as u64,
                        });
                    }
                    self.pending_auto = Some(PendingAuto {
                        id,
                        base: next_task + 1,
                        predicted,
                    });
                }
            }
            return TraceAction::Analyze { record: false };
        };
        match active.mode {
            Mode::Warmup => TraceAction::Analyze { record: false },
            Mode::Capture => TraceAction::Analyze { record: true },
            Mode::AutoCapture { ref predicted } => {
                let want = &predicted[active.cursor as usize];
                if want.node != node || want.reqs != reqs {
                    return TraceAction::Violation(TraceViolation {
                        id: active.id,
                        cursor: active.cursor,
                        kind: mismatch_kind(want.node, &want.reqs, node, reqs),
                    });
                }
                TraceAction::Analyze { record: true }
            }
            Mode::AutoVerify => {
                let t = self
                    .auto_template
                    .as_ref()
                    .expect("verifying without a template");
                let entry = &t.entries[active.cursor as usize];
                if entry.node != node || entry.reqs != reqs {
                    return TraceAction::Violation(TraceViolation {
                        id: active.id,
                        cursor: active.cursor,
                        kind: mismatch_kind(entry.node, &entry.reqs, node, reqs),
                    });
                }
                TraceAction::Analyze { record: true }
            }
            Mode::Replay | Mode::AutoReplay => {
                let is_auto = matches!(active.mode, Mode::AutoReplay);
                let template = if is_auto {
                    self.auto_template.as_ref()
                } else {
                    self.states[&active.id].template.as_ref()
                }
                .expect("replaying without a template");
                let len = template.len();
                if is_auto && active.cursor == len {
                    // Auto traces have no explicit end: completing an
                    // instance rolls straight into the next one, updating
                    // the rebase map the way `end`/`begin` would for an
                    // annotated trace. The engine last *analyzed* the
                    // verification instance (one past the template), so
                    // stale engine references live in that window.
                    push_rebase(
                        &mut self.rebases,
                        template.base + len,
                        template.base + 2 * len,
                        active.base - (template.base + len),
                    );
                    if viz_profile::enabled() {
                        viz_profile::instant(viz_profile::EventKind::TraceReplay {
                            trace: active.id.0,
                            launches: len as u64,
                        });
                    }
                    active.base = next_task;
                    active.cursor = 0;
                    active.shift = template.shift_to(next_task);
                }
                let Some(entry) = template.entries.get(active.cursor as usize) else {
                    return TraceAction::Violation(TraceViolation {
                        id: active.id,
                        cursor: active.cursor,
                        kind: ViolationKind::ExtraLaunch { recorded_len: len },
                    });
                };
                if entry.node != node || entry.reqs != reqs {
                    return TraceAction::Violation(TraceViolation {
                        id: active.id,
                        cursor: active.cursor,
                        kind: mismatch_kind(entry.node, &entry.reqs, node, reqs),
                    });
                }
                active.cursor += 1;
                self.replayed_launches += 1;
                TraceAction::Replay {
                    result: Arc::clone(&entry.result),
                    shift: active.shift,
                }
            }
        }
    }

    /// Record a captured entry (called when `on_launch` said `record`). The
    /// result is shared with the runtime's own storage — no clone.
    pub fn record(
        &mut self,
        node: NodeId,
        reqs: Vec<RegionRequirement>,
        result: Arc<AnalysisResult>,
        forest: &RegionForest,
    ) {
        let Some(active) = self.active.as_mut() else {
            return;
        };
        if matches!(active.mode, Mode::AutoVerify) {
            // The analysis ran; check it is the template's result shifted
            // onto this instance. Anything else means the signature repeat
            // was not an *analysis* repeat: failed speculation, demote.
            let t = self
                .auto_template
                .as_ref()
                .expect("verifying without a template");
            let expected = StoredResult::Shared {
                result: Arc::clone(&t.entries[active.cursor as usize].result),
                shift: active.shift,
            }
            .resolve();
            active.cursor += 1;
            if expected != *result {
                self.demote_auto();
                return;
            }
            if active.cursor == t.len() {
                // Shift-stationary across a full instance: replay from the
                // next launch. This instance was *analyzed*, so engine
                // references already point at it — no rebase yet; replays
                // will supersede this window as they complete.
                let len = t.len();
                active.base += len;
                active.cursor = 0;
                active.shift = t.shift_to(active.base);
                active.mode = Mode::AutoReplay;
            }
            return;
        }
        active.cursor += 1;
        active.recording.push(TemplateEntry { node, reqs, result });
        let capture_done = matches!(
            &active.mode,
            Mode::AutoCapture { predicted } if active.recording.len() == predicted.len()
        );
        if capture_done {
            // The whole predicted instance analyzed and recorded: one
            // verification instance follows before any replay.
            let template = Template {
                base: active.base,
                entries: std::mem::take(&mut active.recording),
            };
            if !instance_is_self_superseding(&template.entries, forest) {
                // Replay freezes the engine's state, so it is only sound
                // when each instance fully supersedes its predecessor.
                // This one leaves entries that would accumulate across
                // instances (unflushed reductions, live read epochs on
                // data the loop never overwrites) — give up on the
                // candidate and return to observation.
                self.demote_auto();
                return;
            }
            let active = self.active.as_mut().unwrap();
            let len = template.len();
            active.base += len;
            active.cursor = 0;
            active.shift = template.shift_to(active.base);
            active.mode = Mode::AutoVerify;
            self.auto_template = Some(template);
        }
    }

    /// Count a warm-up launch (first instance; nothing recorded).
    pub fn advance(&mut self) {
        if let Some(active) = &mut self.active {
            active.cursor += 1;
        }
    }

    /// Demote the active trace after a violation: annotated traces fall
    /// back to normal analysis for the rest of the instance and recapture
    /// from scratch; auto traces return to observation. A partially
    /// replayed prefix gets its own rebase mapping (sound because the
    /// replayed prefix is identical to the recorded one), while the
    /// unreplayed suffix keeps the previous instance's mapping.
    pub fn demote(&mut self, violation: TraceViolation) {
        self.violations.push(violation);
        let Some(active) = self.active.as_ref() else {
            return;
        };
        if active.is_auto() {
            self.demote_auto();
            return;
        }
        let active = self.active.as_mut().unwrap();
        if matches!(active.mode, Mode::Replay) && active.cursor > 0 {
            let t = self.states[&active.id]
                .template
                .as_ref()
                .expect("replaying without a template");
            push_rebase(
                &mut self.rebases,
                t.base,
                t.base + active.cursor,
                active.base - t.base,
            );
            self.hazards.push((
                t.base + active.cursor,
                t.base + t.len(),
                active.base,
                active.base + active.cursor,
            ));
        }
        let st = self.states.get_mut(&active.id).unwrap();
        st.template = None;
        st.instances = 0;
        active.mode = Mode::Warmup;
        active.demoted = true;
        active.recording.clear();
    }

    /// Drop the active auto trace (prefix-rebasing any partial replay) and
    /// restart observation.
    fn demote_auto(&mut self) {
        if let Some(active) = &self.active {
            debug_assert!(active.is_auto());
            if matches!(active.mode, Mode::AutoReplay) && active.cursor > 0 {
                if let Some(t) = self.auto_template.as_ref() {
                    // Stale engine references live in the verification
                    // instance's window (the last analyzed one); only the
                    // replayed prefix moves onto this instance.
                    let analyzed = t.base + t.len();
                    push_rebase(
                        &mut self.rebases,
                        analyzed,
                        analyzed + active.cursor,
                        active.base - analyzed,
                    );
                    self.hazards.push((
                        analyzed + active.cursor,
                        analyzed + t.len(),
                        active.base,
                        active.base + active.cursor,
                    ));
                }
            }
        }
        self.active = None;
        self.auto_template = None;
        self.auto_demotions += 1;
        if let Some(auto) = &mut self.auto {
            auto.reset();
        }
    }

    /// An execution fence: fences are not analyzed launches, so they break
    /// both in-flight instances and any detected periodicity.
    pub fn barrier(&mut self) {
        self.pending_auto = None;
        if let Some(active) = &self.active {
            let v = TraceViolation {
                id: active.id,
                cursor: active.cursor,
                kind: ViolationKind::Interrupted,
            };
            self.demote(v);
        } else if let Some(auto) = &mut self.auto {
            auto.reset();
        }
    }

    /// Close an annotated trace instance. A replay that ran short is a
    /// structured violation (the trace recaptures), not an abort; naming
    /// the wrong trace (or none being open) is a [`RuntimeError`] and
    /// leaves the tracing state untouched.
    pub fn end(
        &mut self,
        id: TraceId,
        next_task: u32,
        forest: &RegionForest,
    ) -> Result<Option<TraceViolation>, RuntimeError> {
        let Some(active) = self.active.take() else {
            return Err(RuntimeError::EndWithoutBegin { requested: id });
        };
        if active.id != id {
            let err = RuntimeError::MismatchedTraceEnd {
                active: active.id,
                requested: id,
            };
            self.active = Some(active);
            return Err(err);
        }
        let st = self.states.get_mut(&id).unwrap();
        st.last_end = next_task;
        match active.mode {
            Mode::Replay => {
                let template = st.template.as_ref().unwrap();
                let len = template.len();
                let (t_base, shift) = (template.base, active.base - template.base);
                if active.cursor < len {
                    let v = TraceViolation {
                        id,
                        cursor: active.cursor,
                        kind: ViolationKind::ShortInstance { recorded_len: len },
                    };
                    // Only the replayed prefix moves onto this instance;
                    // the suffix keeps its previous mapping.
                    push_rebase(&mut self.rebases, t_base, t_base + active.cursor, shift);
                    if active.cursor > 0 {
                        self.hazards.push((
                            t_base + active.cursor,
                            t_base + len,
                            active.base,
                            active.base + active.cursor,
                        ));
                    }
                    st.template = None;
                    st.instances = 0;
                    self.violations.push(v.clone());
                    return Ok(Some(v));
                }
                // Later engine-produced references into the *recorded*
                // instance must point at the corresponding task of this
                // (latest) one — superseding the previous instance's entry.
                push_rebase(&mut self.rebases, t_base, t_base + len, shift);
                st.instances += 1;
            }
            Mode::Capture => {
                if instance_is_self_superseding(&active.recording, forest) {
                    st.template = Some(Template {
                        base: active.base,
                        entries: active.recording,
                    });
                    st.instances += 1;
                } else {
                    // Replay freezes the engine's state, which is only
                    // sound when each instance fully supersedes its
                    // predecessor (same condition auto promotion checks).
                    // This instance leaves entries that accumulate across
                    // iterations — reads of data the loop never overwrites,
                    // unflushed reductions — and a later interfering task
                    // would need a dependence on *every* instance's copy,
                    // which the shift-rebase cannot synthesize. Decline the
                    // template: the annotation is a hint, and analysis
                    // keeps running (the next instance re-auditions).
                    st.template = None;
                }
            }
            Mode::Warmup => {
                if active.demoted {
                    st.instances = 0;
                } else {
                    st.instances += 1;
                }
            }
            Mode::AutoCapture { .. } | Mode::AutoVerify | Mode::AutoReplay => {
                unreachable!("auto traces never reach end_trace")
            }
        }
        Ok(None)
    }

    /// Rebase an engine result produced *after* replayed traces: stale
    /// references into a recorded instance move onto its last replay.
    /// Binary search over the sorted interval map.
    pub fn rebase_result(&self, result: &mut AnalysisResult) {
        if self.rebases.is_empty() && self.hazards.is_empty() {
            return;
        }
        // Hazard expansion first: it keys on the *raw* recorded ids, which
        // the rebase map is about to translate away.
        let mut extra: Vec<TaskId> = Vec::new();
        for d in &result.deps {
            for &(slo, shi, plo, phi) in &self.hazards {
                if d.0 >= slo && d.0 < shi {
                    extra.extend((plo..phi).map(TaskId));
                }
            }
        }
        let shift = |t: &mut TaskId| {
            let idx = self.rebases.partition_point(|r| r.1 <= t.0);
            if let Some(&(s, _, sh)) = self.rebases.get(idx) {
                if t.0 >= s {
                    t.0 += sh;
                }
            }
        };
        for d in &mut result.deps {
            shift(d);
        }
        for plan in &mut result.plans {
            for c in &mut plan.copies {
                if let Source::Task(t, _) = &mut c.source {
                    shift(t);
                }
            }
            for r in &mut plan.reductions {
                shift(&mut r.task);
            }
        }
        for e in extra {
            if !result.deps.contains(&e) {
                result.deps.push(e);
            }
        }
    }

    pub fn is_replaying(&self) -> bool {
        self.active
            .as_ref()
            .is_some_and(|a| matches!(a.mode, Mode::Replay | Mode::AutoReplay))
    }

    /// Inside a `begin_trace`/`end_trace` region or an auto trace (warming,
    /// capturing, or replaying)?
    pub fn in_trace(&self) -> bool {
        self.active.is_some()
    }

    /// A detected repeat is waiting for its first launch to start capture.
    pub fn capture_pending(&self) -> bool {
        self.pending_auto.is_some()
    }

    /// The batched driver serializes these launches: trace bookkeeping is
    /// per-launch-in-order (replay itself is O(1) per launch, so a
    /// replaying "serial" segment is pure in-order retirement).
    pub fn pending_or_active(&self) -> bool {
        self.active.is_some() || self.pending_auto.is_some()
    }

    /// The lowest task id whose commit-ledger entry trace bookkeeping may
    /// still consult: the base of the in-flight instance (end-of-trace
    /// validation and shift computation look back to it) or of a pending
    /// auto capture. `None` when nothing is pinned. Templates themselves
    /// hold `Arc`s to their recorded results and pin nothing.
    pub fn pin_floor(&self) -> Option<u32> {
        let a = self.active.as_ref().map(|a| a.base);
        let p = self.pending_auto.as_ref().map(|p| p.base);
        match (a, p) {
            (Some(a), Some(p)) => Some(a.min(p)),
            (x, y) => x.or(y),
        }
    }

    pub fn violations(&self) -> &[TraceViolation] {
        &self.violations
    }

    /// Number of ranges in the rebase interval map (bounded by the number
    /// of templates with replays, not by the number of instances).
    pub fn rebase_ranges(&self) -> usize {
        self.rebases.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges(v: &[(u32, u32, u32)]) -> Vec<(u32, u32, u32)> {
        let mut r = Vec::new();
        for &(s, e, sh) in v {
            push_rebase(&mut r, s, e, sh);
        }
        r
    }

    #[test]
    fn rebase_map_supersedes_same_window() {
        // 100 replayed instances of one template: the window's mapping is
        // replaced each time, never accumulated.
        let mut r = Vec::new();
        for k in 1..=100u32 {
            push_rebase(&mut r, 10, 20, 10 * k);
        }
        assert_eq!(r, vec![(10, 20, 1000)]);
    }

    #[test]
    fn rebase_map_trims_partial_overlap() {
        let r = ranges(&[(10, 20, 5), (15, 30, 7)]);
        assert_eq!(r, vec![(10, 15, 5), (15, 30, 7)]);
        // A prefix split: the replayed prefix supersedes, the suffix keeps
        // the old mapping.
        let r = ranges(&[(10, 20, 5), (10, 13, 9)]);
        assert_eq!(r, vec![(10, 13, 9), (13, 20, 5)]);
    }

    #[test]
    fn rebase_map_coalesces_equal_neighbors() {
        let r = ranges(&[(10, 20, 5), (20, 30, 5)]);
        assert_eq!(r, vec![(10, 30, 5)]);
    }

    #[test]
    fn rebase_map_zero_shift_clears() {
        let r = ranges(&[(10, 20, 5), (10, 20, 0)]);
        assert!(r.is_empty());
    }

    #[test]
    fn rebase_lookup_uses_latest_mapping() {
        let mut tracing = Tracing::default();
        push_rebase(&mut tracing.rebases, 10, 20, 5);
        push_rebase(&mut tracing.rebases, 30, 40, 100);
        let mut result = AnalysisResult {
            deps: vec![TaskId(9), TaskId(10), TaskId(19), TaskId(20), TaskId(35)],
            plans: vec![],
        };
        tracing.rebase_result(&mut result);
        assert_eq!(
            result.deps,
            vec![TaskId(9), TaskId(15), TaskId(24), TaskId(20), TaskId(135)]
        );
    }

    #[test]
    fn task_shift_moves_only_the_window() {
        let shift = TaskShift {
            lo: 10,
            hi: 30,
            delta: 40,
        };
        assert_eq!(shift.apply(TaskId(9)), TaskId(9));
        assert_eq!(shift.apply(TaskId(10)), TaskId(50));
        assert_eq!(shift.apply(TaskId(29)), TaskId(69));
        assert_eq!(shift.apply(TaskId(30)), TaskId(30));
    }
}
