//! Dynamic tracing: memoization of the dependence/coherence analysis
//! (Lee et al., "Dynamic Tracing: Memoization of Task Graphs for Dynamic
//! Task-Based Runtimes" — the paper's reference \[15\]).
//!
//! The evaluation of the visibility paper *disables* tracing ("these
//! experiments do not measure Legion's peak performance, but rather the
//! performance of the different coherence algorithms", §8). This module
//! implements it as the natural extension: applications wrap the body of a
//! repetitive loop in [`crate::Runtime::begin_trace`] /
//! [`crate::Runtime::end_trace`]; the runtime
//!
//! 1. analyzes the first instance normally (warm-up: partitions are
//!    discovered, equivalence sets refined, views built);
//! 2. analyzes and *records* the second instance — by then the analysis is
//!    in steady state, so every cross-instance reference lands in the
//!    immediately preceding instance;
//! 3. **replays** instances three onward: launches are validated against
//!    the recorded signature and their dependences/plans are synthesized by
//!    shifting the recorded ones — the visibility engine is not consulted
//!    at all.
//!
//! Soundness rests on instances being *identical* (validated launch by
//! launch; a mismatch is a trace violation, as in Legion) and *contiguous*
//! (anything launched between instances invalidates the template, which is
//! then recaptured). Because replays do not update the engine's state, the
//! runtime rebases any later engine result that references the recorded
//! instance onto the final replayed instance — valid precisely because the
//! instances are identical.

use crate::plan::{AnalysisResult, Source};
use crate::task::{RegionRequirement, TaskId};
use viz_geometry::FxHashMap;
use viz_sim::NodeId;

/// Application-chosen trace identifier.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TraceId(pub u32);

/// One recorded launch of a trace template.
#[derive(Clone)]
pub(crate) struct TemplateEntry {
    pub node: NodeId,
    pub reqs: Vec<RegionRequirement>,
    pub result: AnalysisResult,
}

/// A captured trace: the launches of one steady-state instance, with their
/// analysis results, based at `base`.
pub(crate) struct Template {
    pub base: u32,
    pub entries: Vec<TemplateEntry>,
}

impl Template {
    pub fn len(&self) -> u32 {
        self.entries.len() as u32
    }
}

#[derive(Default)]
pub(crate) struct TraceState {
    /// Completed (analyzed) instances so far.
    pub instances: u32,
    pub template: Option<Template>,
    /// Task id one past the end of the last completed instance (for the
    /// contiguity check).
    pub last_end: u32,
}

/// The runtime's tracing bookkeeping.
#[derive(Default)]
pub(crate) struct Tracing {
    states: FxHashMap<TraceId, TraceState>,
    /// An in-progress trace: `(id, base, next-entry-index, replaying)`.
    active: Option<ActiveTrace>,
    /// Shifts applied to later engine results: a reference into
    /// `start..end` moves by `shift` (the distance from the recorded
    /// instance to the last replayed one).
    rebases: Vec<(u32, u32, u32)>,
    /// Launches synthesized from templates (statistics).
    pub replayed_launches: u64,
}

pub(crate) struct ActiveTrace {
    pub id: TraceId,
    pub base: u32,
    pub cursor: u32,
    pub replaying: bool,
    /// Entries recorded by this instance (when capturing).
    pub recording: Vec<TemplateEntry>,
}

/// What the runtime should do with the next launch inside a trace.
pub(crate) enum TraceAction {
    /// Not in a trace (or warming up / capturing): run the engine. The
    /// bool says whether the result must be recorded into the template.
    Analyze { record: bool },
    /// Replay: synthesize the result from the template (already shifted).
    Replay(Box<AnalysisResult>),
}

impl Tracing {
    pub fn begin(&mut self, id: TraceId, next_task: u32) {
        assert!(
            self.active.is_none(),
            "nested or overlapping traces are not supported"
        );
        let st = self.states.entry(id).or_default();
        // Replay requires a template and contiguity: nothing may have been
        // launched since the previous instance ended.
        let replaying = st.template.is_some() && st.instances >= 2 && st.last_end == next_task;
        if !replaying && st.template.is_some() && st.last_end != next_task {
            // Intervening launches changed the engine state: the template
            // no longer describes reality. Recapture from scratch.
            st.template = None;
            st.instances = 0;
        }
        self.active = Some(ActiveTrace {
            id,
            base: next_task,
            cursor: 0,
            replaying,
            recording: Vec::new(),
        });
    }

    /// Decide how to handle a launch. For replays, validates the signature
    /// and synthesizes the shifted result.
    pub fn on_launch(
        &mut self,
        node: NodeId,
        reqs: &[RegionRequirement],
        next_task: u32,
    ) -> TraceAction {
        let Some(active) = &mut self.active else {
            return TraceAction::Analyze { record: false };
        };
        let st = &self.states[&active.id];
        if !active.replaying {
            // Capture on the second instance (the first is warm-up).
            return TraceAction::Analyze {
                record: st.instances == 1,
            };
        }
        let template = st.template.as_ref().expect("replaying without template");
        let entry = template
            .entries
            .get(active.cursor as usize)
            .unwrap_or_else(|| {
                panic!(
                    "trace {:?} violated: more launches than the recorded {}",
                    active.id,
                    template.len()
                )
            });
        assert!(
            entry.node == node && entry.reqs == reqs,
            "trace {:?} violated at launch {}: requirements differ from the recording",
            active.id,
            active.cursor
        );
        // Shift: template ids in [template.base - len, template.base + len)
        // move so the recorded instance lands at this instance's base.
        let len = template.len();
        let shift_base = template.base;
        let new_base = next_task - active.cursor;
        let shift = |t: TaskId| -> TaskId {
            let id = t.0;
            if id >= shift_base.saturating_sub(len) && id < shift_base + len {
                TaskId(id + new_base - shift_base)
            } else {
                t // pre-trace reference: still valid as-is
            }
        };
        let mut result = entry.result.clone();
        for d in &mut result.deps {
            *d = shift(*d);
        }
        for plan in &mut result.plans {
            for c in &mut plan.copies {
                if let Source::Task(t, _) = &mut c.source {
                    *t = shift(*t);
                }
            }
            for r in &mut plan.reductions {
                r.task = shift(r.task);
            }
        }
        active.cursor += 1;
        self.replayed_launches += 1;
        TraceAction::Replay(Box::new(result))
    }

    /// Record a captured entry (called when `on_launch` said `record`).
    pub fn record(&mut self, node: NodeId, reqs: Vec<RegionRequirement>, result: AnalysisResult) {
        if let Some(active) = &mut self.active {
            active.cursor += 1;
            active.recording.push(TemplateEntry { node, reqs, result });
        }
    }

    /// Count a warm-up launch (first instance; nothing recorded).
    pub fn advance(&mut self) {
        if let Some(active) = &mut self.active {
            active.cursor += 1;
        }
    }

    pub fn end(&mut self, id: TraceId, next_task: u32) {
        let active = self.active.take().expect("end_trace without begin_trace");
        assert_eq!(active.id, id, "mismatched begin/end trace ids");
        let st = self.states.get_mut(&id).unwrap();
        if active.replaying {
            let template = st.template.as_ref().unwrap();
            assert_eq!(
                active.cursor,
                template.len(),
                "trace {id:?} violated: fewer launches than the recorded instance"
            );
            // Later engine-produced references into the *recorded* instance
            // must point at the corresponding task of this (latest) one.
            let start = template.base;
            let end = template.base + template.len();
            let shift = active.base - template.base;
            self.rebases.retain(|(s, e, _)| !(*s == start && *e == end));
            if shift > 0 {
                self.rebases.push((start, end, shift));
            }
        } else if st.instances == 1 {
            st.template = Some(Template {
                base: active.base,
                entries: active.recording,
            });
        }
        st.instances += 1;
        st.last_end = next_task;
    }

    /// Rebase an engine result produced *after* replayed traces: stale
    /// references into a recorded instance move onto its last replay.
    pub fn rebase_result(&self, result: &mut AnalysisResult) {
        if self.rebases.is_empty() {
            return;
        }
        let shift = |t: &mut TaskId| {
            for (s, e, sh) in &self.rebases {
                if t.0 >= *s && t.0 < *e {
                    t.0 += sh;
                    return;
                }
            }
        };
        for d in &mut result.deps {
            shift(d);
        }
        for plan in &mut result.plans {
            for c in &mut plan.copies {
                if let Source::Task(t, _) = &mut c.source {
                    shift(t);
                }
            }
            for r in &mut plan.reductions {
                shift(&mut r.task);
            }
        }
    }

    pub fn is_replaying(&self) -> bool {
        self.active.as_ref().is_some_and(|a| a.replaying)
    }

    /// Inside a `begin_trace`/`end_trace` region (warming, capturing, or
    /// replaying)? Batched analysis falls back to the serial driver here:
    /// trace bookkeeping is inherently per-launch-in-order.
    pub fn in_trace(&self) -> bool {
        self.active.is_some()
    }
}
