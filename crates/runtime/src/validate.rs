//! Brute-force sufficiency oracle for the dependence analysis.
//!
//! The engines may (and should) omit edges to occluded operations; what must
//! hold is that **every interfering pair of tasks is ordered transitively**
//! (§3.2). This module checks that property directly from the launch
//! stream, independent of any visibility machinery — the ground truth the
//! engines are tested against.

use crate::dag::TaskDag;
use crate::task::TaskLaunch;
use std::ops::Deref;
use viz_region::RegionForest;

/// A violated ordering: tasks `earlier` and `later` interfere but the DAG
/// does not order them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    pub earlier: crate::task::TaskId,
    pub later: crate::task::TaskId,
    pub reason: String,
}

/// Do two launches interfere (some pair of requirements on the same field
/// with overlapping domains and interfering privileges)?
pub fn launches_interfere(forest: &RegionForest, a: &TaskLaunch, b: &TaskLaunch) -> bool {
    for ra in &a.reqs {
        for rb in &b.reqs {
            if ra.field != rb.field {
                continue;
            }
            if forest.root_of(ra.region) != forest.root_of(rb.region) {
                continue;
            }
            if !ra.privilege.interferes(rb.privilege) {
                continue;
            }
            if forest.domain(ra.region).overlaps(forest.domain(rb.region)) {
                return true;
            }
        }
    }
    false
}

/// Check that the DAG orders every interfering pair (transitively). Returns
/// all violations (empty = the analysis is sound). Quadratic in the number
/// of tasks; intended for tests.
///
/// Generic over how the arguments are held so both plain references and
/// the lock guards returned by the runtime accessors
/// (`check_sufficiency(rt.forest(), rt.launches(), rt.dag())`) work.
pub fn check_sufficiency(
    forest: impl Deref<Target = RegionForest>,
    launches: impl AsRef<[TaskLaunch]>,
    dag: impl Deref<Target = TaskDag>,
) -> Vec<Violation> {
    let forest: &RegionForest = &forest;
    let launches: &[TaskLaunch] = launches.as_ref();
    let dag: &TaskDag = &dag;
    let mut violations = Vec::new();
    for j in 0..launches.len() {
        for i in 0..j {
            let (a, b) = (&launches[i], &launches[j]);
            if launches_interfere(forest, a, b) && !dag.must_follow(b.id, a.id) {
                violations.push(Violation {
                    earlier: a.id,
                    later: b.id,
                    reason: format!(
                        "{} ({:?}) and {} ({:?}) interfere but are unordered",
                        a.name, a.id, b.name, b.id
                    ),
                });
            }
        }
    }
    violations
}

/// Count the pairs of tasks that interfere directly — a measure of how much
/// serialization the program inherently requires (used in tests to assert
/// the engines do not *over*-serialize trivially parallel programs).
pub fn count_interfering_pairs(
    forest: impl Deref<Target = RegionForest>,
    launches: impl AsRef<[TaskLaunch]>,
) -> usize {
    let forest: &RegionForest = &forest;
    let launches: &[TaskLaunch] = launches.as_ref();
    let mut count = 0;
    for j in 0..launches.len() {
        for i in 0..j {
            if launches_interfere(forest, &launches[i], &launches[j]) {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{RegionRequirement, TaskId};
    use viz_region::Privilege;

    fn launch(id: u32, reqs: Vec<RegionRequirement>) -> TaskLaunch {
        TaskLaunch {
            id: TaskId(id),
            name: format!("t{id}"),
            node: 0,
            reqs,
            duration_ns: 0,
        }
    }

    #[test]
    fn detects_missing_ordering() {
        let mut forest = RegionForest::new();
        let root = forest.create_root_1d("A", 10);
        let f = forest.add_field(root, "v");
        let launches = vec![
            launch(0, vec![RegionRequirement::read_write(root, f)]),
            launch(1, vec![RegionRequirement::read_write(root, f)]),
        ];
        let mut dag = TaskDag::new();
        dag.push(vec![]);
        dag.push(vec![]); // missing edge!
        let v = check_sufficiency(&forest, &launches, &dag);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].earlier, TaskId(0));
        assert_eq!(v[0].later, TaskId(1));
    }

    #[test]
    fn transitive_ordering_suffices() {
        let mut forest = RegionForest::new();
        let root = forest.create_root_1d("A", 10);
        let f = forest.add_field(root, "v");
        let launches = vec![
            launch(0, vec![RegionRequirement::read_write(root, f)]),
            launch(1, vec![RegionRequirement::read_write(root, f)]),
            launch(2, vec![RegionRequirement::read_write(root, f)]),
        ];
        let mut dag = TaskDag::new();
        dag.push(vec![]);
        dag.push(vec![TaskId(0)]);
        dag.push(vec![TaskId(1)]); // t2 -> t0 only transitive
        assert!(check_sufficiency(&forest, &launches, &dag).is_empty());
    }

    #[test]
    fn non_interfering_pairs_need_no_ordering() {
        let mut forest = RegionForest::new();
        let root = forest.create_root_1d("A", 10);
        let f = forest.add_field(root, "v");
        let p = forest.create_equal_partition_1d(root, "P", 2);
        let launches = vec![
            launch(
                0,
                vec![RegionRequirement::read_write(forest.subregion(p, 0), f)],
            ),
            launch(
                1,
                vec![RegionRequirement::read_write(forest.subregion(p, 1), f)],
            ),
            launch(2, vec![RegionRequirement::read(root, f)]),
            launch(3, vec![RegionRequirement::read(root, f)]),
        ];
        let mut dag = TaskDag::new();
        dag.push(vec![]);
        dag.push(vec![]);
        dag.push(vec![TaskId(0), TaskId(1)]);
        dag.push(vec![TaskId(0), TaskId(1)]);
        assert!(check_sufficiency(&forest, &launches, &dag).is_empty());
        assert_eq!(count_interfering_pairs(&forest, &launches), 4);
    }

    #[test]
    fn same_op_reductions_do_not_interfere() {
        let mut forest = RegionForest::new();
        let root = forest.create_root_1d("A", 10);
        let f = forest.add_field(root, "v");
        let sum = viz_region::RedOpRegistry::SUM;
        let a = launch(0, vec![RegionRequirement::reduce(root, f, sum)]);
        let b = launch(1, vec![RegionRequirement::reduce(root, f, sum)]);
        assert!(!launches_interfere(&forest, &a, &b));
        let c = launch(2, vec![RegionRequirement::new(root, f, Privilege::Read)]);
        assert!(launches_interfere(&forest, &a, &c));
    }
}
