//! No-alloc-steady-state proof for the candidate-resolution path.
//!
//! The raycast backward scan used to allocate per query: a traversal stack
//! inside `DynamicBvh::query`, a fresh hits vector per requirement, and a
//! fresh candidates vector per requirement. Those now live in per-shard
//! scratch ([`ScanScratch`] in `analysis/raycast.rs`) and inside the
//! [`VisibilityBackend`] implementations. This test wraps the global
//! allocator in a counter and proves both backends resolve entire batches
//! with **zero** allocations once their buffers have warmed up.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use viz_geometry::{DynamicBvh, Rect};
use viz_runtime::analysis::visibility::{
    BatchVisibility, QuerySpan, ScalarVisibility, VisibilityBackend,
};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is a new allocation for steady-state purposes.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn fixture(leaves: u64) -> (DynamicBvh, Vec<Rect>, Vec<QuerySpan>) {
    let mut tree = DynamicBvh::new();
    for i in 0..leaves {
        let x = (i as i64 * 13) % 509;
        let y = (i as i64 * 7) % 143;
        tree.insert(i, Rect::xy(x, x + 8, y, y + 5));
    }
    // 24 requirements, two rects each — a realistic shard batch.
    let mut queries = Vec::new();
    let mut spans = Vec::new();
    for k in 0..24i64 {
        let start = queries.len() as u32;
        queries.push(Rect::xy(k * 19, k * 19 + 60, 0, 80));
        queries.push(Rect::xy(k * 23, k * 23 + 30, 40, 150));
        spans.push((start, 2));
    }
    (tree, queries, spans)
}

/// Drive `rounds` full batches through a backend, reusing one output
/// buffer; return allocations observed.
fn run_rounds(
    backend: &mut dyn VisibilityBackend,
    tree: &DynamicBvh,
    queries: &[Rect],
    spans: &[QuerySpan],
    out: &mut Vec<u64>,
    rounds: usize,
) -> u64 {
    let before = allocs();
    for _ in 0..rounds {
        backend.begin_batch();
        let mut total = 0usize;
        for k in 0..spans.len() {
            out.clear();
            backend.resolve(tree, queries, spans, k, out);
            // Consume like the scan does, so the work cannot be elided.
            out.sort_unstable();
            out.dedup();
            total += out.len();
        }
        assert!(total > 0, "fixture produced no hits at all");
    }
    allocs() - before
}

#[test]
fn scalar_backend_steady_state_allocates_nothing() {
    let (tree, queries, spans) = fixture(256);
    let mut backend = ScalarVisibility::default();
    let mut out = Vec::new();
    // Warm-up grows the traversal stack and the output buffer.
    run_rounds(&mut backend, &tree, &queries, &spans, &mut out, 2);
    let steady = run_rounds(&mut backend, &tree, &queries, &spans, &mut out, 20);
    assert_eq!(steady, 0, "scalar resolve allocated {steady} times warm");
}

#[test]
fn batch_backend_steady_state_allocates_nothing() {
    let (tree, queries, spans) = fixture(256);
    // batch_min 0: the flattened path runs even for this modest tree.
    let mut backend = BatchVisibility::new(0);
    let mut out = Vec::new();
    // Warm-up takes the snapshot and sizes hits/offsets/out. The epoch
    // never changes here, so steady state re-sweeps (begin_batch) but
    // never re-flattens — and the sweep itself must not allocate.
    run_rounds(&mut backend, &tree, &queries, &spans, &mut out, 2);
    let steady = run_rounds(&mut backend, &tree, &queries, &spans, &mut out, 20);
    assert_eq!(steady, 0, "batch resolve allocated {steady} times warm");
}

#[test]
fn batch_fallback_steady_state_allocates_nothing() {
    let (tree, queries, spans) = fixture(16);
    // Tree below the default threshold: the batch backend's scalar
    // fallback path must be just as allocation-free.
    let mut backend = BatchVisibility::new(64);
    let mut out = Vec::new();
    run_rounds(&mut backend, &tree, &queries, &spans, &mut out, 2);
    let steady = run_rounds(&mut backend, &tree, &queries, &spans, &mut out, 20);
    assert_eq!(steady, 0, "fallback resolve allocated {steady} times warm");
}
