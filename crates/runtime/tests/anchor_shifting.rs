//! §7.1's anchor shifting: when an application switches from one
//! disjoint-and-complete partition to another, ray casting re-anchors its
//! equivalence sets under the newly dominant subtree — without changing
//! any analysis results.

use std::sync::Arc;
use viz_runtime::analysis::raycast::RayCast;
use viz_runtime::validate::check_sufficiency;
use viz_runtime::{
    CoherenceEngine, EngineKind, LaunchSpec, PhysicalRegion, RegionRequirement, Runtime,
    RuntimeConfig,
};

/// Two different disjoint-and-complete tilings of the same region.
fn build(
    rt: &mut Runtime,
) -> (
    viz_region::RegionId,
    viz_region::FieldId,
    viz_region::PartitionId,
    viz_region::PartitionId,
) {
    let root = rt.forest_mut().create_root_1d("A", 48);
    let f = rt.forest_mut().add_field(root, "v");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", 4);
    let q = rt.forest_mut().create_equal_partition_1d(root, "Q", 6);
    (root, f, p, q)
}

fn body(add: f64) -> viz_runtime::TaskBody {
    Arc::new(move |rs: &mut [PhysicalRegion]| {
        rs[0].update_all(|_, v| v + add);
    })
}

/// Write through P for a few rounds, then switch entirely to Q.
fn program(
    rt: &mut Runtime,
    p: viz_region::PartitionId,
    q: viz_region::PartitionId,
    f: viz_region::FieldId,
) {
    for round in 0..3 {
        for i in 0..4 {
            let piece = rt.forest().subregion(p, i);
            rt.submit(LaunchSpec::new(
                format!("p{round}"),
                0,
                vec![RegionRequirement::read_write(piece, f)],
                0,
                Some(body(1.0)),
            ))
            .unwrap()
            .id();
        }
    }
    for round in 0..10 {
        for i in 0..6 {
            let piece = rt.forest().subregion(q, i);
            rt.submit(LaunchSpec::new(
                format!("q{round}"),
                0,
                vec![RegionRequirement::read_write(piece, f)],
                0,
                Some(body(10.0)),
            ))
            .unwrap()
            .id();
        }
    }
}

#[test]
fn shifting_preserves_results() {
    // Reference through the naive painter.
    let mut rt_ref = Runtime::single_node(EngineKind::PaintNaive);
    let (root_r, f_r, p_r, q_r) = build(&mut rt_ref);
    program(&mut rt_ref, p_r, q_r, f_r);
    let probe_r = rt_ref.inline_read(root_r, f_r).unwrap();
    let expect: Vec<f64> = rt_ref
        .execute_values()
        .inline(probe_r)
        .iter()
        .map(|(_, v)| v)
        .collect();

    let engine = Box::new(RayCast::new());
    let mut rt = Runtime::with_engine(RuntimeConfig::new(EngineKind::RayCast), engine);
    let (root, f, p, q) = build(&mut rt);
    program(&mut rt, p, q, f);
    let probe = rt.inline_read(root, f).unwrap();
    assert!(check_sufficiency(rt.forest(), rt.launches(), rt.dag()).is_empty());
    let got: Vec<f64> = rt
        .execute_values()
        .inline(probe)
        .iter()
        .map(|(_, v)| v)
        .collect();
    assert_eq!(got, expect, "shifting must not change values");
}

#[test]
fn shift_actually_happens_and_steady_state_is_clean() {
    let mut engine = RayCast::new();
    // Drive the engine directly so we can inspect the shift count.
    let mut rt = Runtime::single_node(EngineKind::PaintNaive); // placeholder runtime for regions
    let (_, f, p, q) = build(&mut rt);
    let forest = rt.forest().clone();
    let shards = viz_runtime::ShardMap::new(1, false);
    let mut machine = viz_sim::Machine::new(1);
    let mut next = 0u32;
    let mut launch =
        |engine: &mut RayCast, machine: &mut viz_sim::Machine, region: viz_region::RegionId| {
            let l = viz_runtime::TaskLaunch {
                id: viz_runtime::TaskId(next),
                name: String::new(),
                node: 0,
                reqs: vec![RegionRequirement::read_write(region, f)],
                duration_ns: 0,
            };
            next += 1;
            let mut ctx = viz_runtime::engine::AnalysisCtx {
                forest: &forest,
                machine,
                shards: &shards,
            };
            engine.analyze(&l, &mut ctx);
        };
    // Warm up on P.
    for _ in 0..3 {
        for i in 0..4 {
            launch(&mut engine, &mut machine, forest.subregion(p, i));
        }
    }
    assert_eq!(engine.shift_count(), 0);
    // Switch to Q; after enough usage the anchors shift exactly once.
    for _ in 0..10 {
        for i in 0..6 {
            launch(&mut engine, &mut machine, forest.subregion(q, i));
        }
    }
    assert_eq!(engine.shift_count(), 1, "one shift to the Q subtree");
    // Steady state under Q: writes keep the set count at Q's arity.
    assert_eq!(engine.state_size().equivalence_sets, 6);
}

#[test]
fn no_shift_when_usage_is_mixed() {
    let mut rt = Runtime::with_engine(
        RuntimeConfig::new(EngineKind::RayCast),
        Box::new(RayCast::new()),
    );
    let (root, f, p, q) = build(&mut rt);
    // Alternate P and Q launches: neither dominates 4:1, so no shift —
    // verified indirectly: results still correct and sound.
    for round in 0..6 {
        for i in 0..4 {
            let piece = rt.forest().subregion(p, i);
            rt.submit(LaunchSpec::new(
                "p",
                0,
                vec![RegionRequirement::read_write(piece, f)],
                0,
                Some(body(1.0)),
            ))
            .unwrap()
            .id();
        }
        for i in 0..6 {
            let piece = rt.forest().subregion(q, i);
            rt.submit(LaunchSpec::new(
                format!("q{round}"),
                0,
                vec![RegionRequirement::read_write(piece, f)],
                0,
                Some(body(2.0)),
            ))
            .unwrap()
            .id();
        }
    }
    let probe = rt.inline_read(root, f).unwrap();
    assert!(check_sufficiency(rt.forest(), rt.launches(), rt.dag()).is_empty());
    let vals = rt.execute_values();
    let v = vals.inline(probe);
    assert_eq!(v.get(viz_geometry::Point::p1(0)), 6.0 + 12.0);
}
