//! Automatic trace detection tests.
//!
//! The auto-tracer must be *transparent*: enabling it may only change how
//! fast analysis runs, never what it computes. Random programs with an
//! embedded repeating unit run with detection on and off, through all four
//! engines and both analysis drivers (serial and sharded), and must agree
//! on dependences, plans, and executed values. Adversarial near-repeats —
//! streams that look periodic to a hash but differ somewhere — must never
//! be promoted.

use proptest::prelude::*;
use std::sync::Arc;
use viz_geometry::{IndexSpace, Point, Rect};
use viz_region::{Privilege, RedOpRegistry};
use viz_runtime::validate::check_sufficiency;
use viz_runtime::{
    EngineKind, LaunchSpec, PhysicalRegion, RegionRequirement, Runtime, RuntimeConfig,
};

const N: i64 = 48;
const PIECES: usize = 4;

/// One abstract launch of the generated programs (see
/// `prop_engine_differential.rs` for the shape).
#[derive(Clone, Debug)]
struct AbsLaunch {
    target: usize, // 0..PIECES = primary piece, PIECES..2*PIECES = ghost
    privilege: u8, // 0 = read, 1 = rw, 2 = reduce-sum
    salt: u32,     // body constant (does not affect the signature)
}

fn abs_launch() -> impl Strategy<Value = AbsLaunch> {
    ((0..2 * PIECES), 0u8..3, 0u32..1000).prop_map(|(target, privilege, salt)| AbsLaunch {
        target,
        privilege,
        salt,
    })
}

/// A program with structure the detector can (and must) exploit: a random
/// prefix, a unit repeated several times, and a random suffix that breaks
/// the periodicity.
#[derive(Clone, Debug)]
struct Program {
    prefix: Vec<AbsLaunch>,
    unit: Vec<AbsLaunch>,
    repeats: usize,
    suffix: Vec<AbsLaunch>,
}

impl Program {
    fn stream(&self) -> Vec<AbsLaunch> {
        let mut out = self.prefix.clone();
        for _ in 0..self.repeats {
            out.extend(self.unit.iter().cloned());
        }
        out.extend(self.suffix.iter().cloned());
        out
    }
}

fn program() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(abs_launch(), 0..4),
        prop::collection::vec(abs_launch(), 1..6),
        1usize..8,
        prop::collection::vec(abs_launch(), 0..4),
    )
        .prop_map(|(prefix, unit, repeats, suffix)| Program {
            prefix,
            unit,
            repeats,
            suffix,
        })
}

fn build_runtime(engine: EngineKind, auto: bool, threads: usize) -> Runtime {
    Runtime::new(
        RuntimeConfig::new(engine)
            .nodes(2)
            .analysis_threads(threads)
            .auto_trace(auto),
    )
}

fn setup_regions(
    rt: &mut Runtime,
) -> (
    viz_region::RegionId,
    viz_region::FieldId,
    Vec<viz_region::RegionId>,
) {
    let root = rt.forest_mut().create_root_1d("A", N);
    let field = rt.forest_mut().add_field(root, "v");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", PIECES);
    let chunk = N / PIECES as i64;
    let ghosts: Vec<IndexSpace> = (0..PIECES as i64)
        .map(|i| {
            let lo = i * chunk;
            let hi = (i + 1) * chunk - 1;
            let mut rects = Vec::new();
            if lo > 0 {
                rects.push(Rect::span(lo - 2, lo - 1));
            }
            if hi < N - 1 {
                rects.push(Rect::span(hi + 1, (hi + 2).min(N - 1)));
            }
            IndexSpace::from_rects(rects)
        })
        .collect();
    let g = rt.forest_mut().create_partition(root, "G", ghosts);
    rt.try_set_initial(root, field, |pt| (pt.x % 17) as f64)
        .unwrap();
    let mut regions = Vec::new();
    for k in 0..PIECES {
        regions.push(rt.forest().subregion(p, k));
    }
    for k in 0..PIECES {
        regions.push(rt.forest().subregion(g, k));
    }
    (root, field, regions)
}

fn spec_of(
    l: &AbsLaunch,
    i: usize,
    regions: &[viz_region::RegionId],
    field: viz_region::FieldId,
) -> LaunchSpec {
    let region = regions[l.target];
    let salt = l.salt as f64 + i as f64;
    let (privilege, body): (Privilege, viz_runtime::TaskBody) = match l.privilege {
        0 => (Privilege::Read, Arc::new(|_: &mut [PhysicalRegion]| {})),
        1 => (
            Privilege::ReadWrite,
            Arc::new(move |rs: &mut [PhysicalRegion]| {
                rs[0].update_all(|pt, v| ((v * 3.0 + salt + pt.x as f64) as i64 % 257) as f64);
            }),
        ),
        _ => (
            Privilege::Reduce(RedOpRegistry::SUM),
            Arc::new(move |rs: &mut [PhysicalRegion]| {
                let dom = rs[0].domain().clone();
                for pt in dom.points() {
                    rs[0].reduce(pt, ((salt as i64 + pt.x) % 13) as f64);
                }
            }),
        ),
    };
    LaunchSpec::new(
        format!("t{i}"),
        l.target % 2,
        vec![RegionRequirement::new(region, field, privilege)],
        100,
        Some(body),
    )
}

struct Outcome {
    values: Vec<f64>,
    deps: Vec<Vec<u32>>,
    plans_fingerprint: usize,
    replayed: u64,
    detected: u64,
}

/// Run one program; `batched` feeds the entire stream through
/// [`Runtime::run_batch`] (the sharded driver path), otherwise launches
/// go one at a time through the serial path.
fn run_program(
    engine: EngineKind,
    auto: bool,
    threads: usize,
    batched: bool,
    stream: &[AbsLaunch],
) -> Outcome {
    let mut rt = build_runtime(engine, auto, threads);
    let (root, field, regions) = setup_regions(&mut rt);
    let specs: Vec<LaunchSpec> = stream
        .iter()
        .enumerate()
        .map(|(i, l)| spec_of(l, i, &regions, field))
        .collect();
    if batched {
        rt.submit_batch(specs).unwrap();
    } else {
        for s in specs {
            rt.submit(LaunchSpec::new(
                s.name,
                s.node,
                s.reqs,
                s.duration_ns,
                s.body,
            ))
            .unwrap()
            .id();
        }
    }
    let probe = rt.inline_read(root, field).unwrap();
    let violations = check_sufficiency(rt.forest(), rt.launches(), rt.dag());
    assert!(
        violations.is_empty(),
        "{engine:?} auto={auto} threads={threads}: unsound DAG: {violations:?}"
    );
    let results = rt.results();
    let deps: Vec<Vec<u32>> = results
        .iter()
        .map(|r| r.deps.iter().map(|d| d.0).collect())
        .collect();
    let plans_fingerprint = results.iter().map(|r| r.plans.len()).sum::<usize>()
        + results
            .iter()
            .flat_map(|r| &r.plans)
            .map(|p| p.copies.len() + p.reductions.len())
            .sum::<usize>();
    let replayed = rt.replayed_launches();
    let detected = rt.auto_traces_detected();
    let store = rt.execute_values();
    let values: Vec<f64> = (0..N)
        .map(|x| store.inline(probe).get(Point::p1(x)))
        .collect();
    Outcome {
        values,
        deps,
        plans_fingerprint,
        replayed,
        detected,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Detection on must be invisible: same dependences and same executed
    /// values as detection off, under every engine and both drivers.
    #[test]
    fn auto_tracing_is_transparent(p in program()) {
        let stream = p.stream();
        let reference = run_program(EngineKind::PaintNaive, false, 1, false, &stream);
        for engine in [
            EngineKind::PaintNaive,
            EngineKind::Paint,
            EngineKind::Warnock,
            EngineKind::RayCast,
        ] {
            for (threads, batched) in [(1, false), (4, true)] {
                let auto = run_program(engine, true, threads, batched, &stream);
                prop_assert_eq!(
                    &auto.values, &reference.values,
                    "{:?} threads={} batched={}: detection changed values",
                    engine, threads, batched
                );
                // Same engine without detection: dependences and plan
                // shapes must be identical, not merely value-equivalent.
                let plain = run_program(engine, false, threads, batched, &stream);
                prop_assert_eq!(&auto.deps, &plain.deps,
                    "{:?}: detection changed dependences", engine);
                prop_assert_eq!(auto.plans_fingerprint, plain.plans_fingerprint,
                    "{:?}: detection changed plans", engine);
            }
        }
    }
}

/// A long clean loop must be detected and replayed, and serial vs sharded
/// drivers must agree on everything with detection enabled.
#[test]
fn long_loop_is_detected_and_replays() {
    let mut unit = Vec::new();
    for k in 0..PIECES {
        unit.push(AbsLaunch {
            target: k,
            privilege: 1,
            salt: 7,
        });
    }
    for k in 0..PIECES {
        unit.push(AbsLaunch {
            target: PIECES + k,
            privilege: 2,
            salt: 3,
        });
    }
    let p = Program {
        prefix: vec![],
        unit,
        repeats: 10,
        suffix: vec![],
    };
    let stream = p.stream();
    let plain = run_program(EngineKind::RayCast, false, 1, false, &stream);
    let serial = run_program(EngineKind::RayCast, true, 1, false, &stream);
    let sharded = run_program(EngineKind::RayCast, true, 4, true, &stream);
    assert_eq!(serial.values, plain.values);
    assert_eq!(sharded.values, plain.values);
    assert_eq!(serial.deps, sharded.deps, "drivers disagree on dependences");
    assert_eq!(serial.detected, 1, "one trace must be promoted");
    assert_eq!(sharded.detected, 1);
    // Detection after 2 observed instances, capture on the 3rd, one
    // analyzed verification instance on the 4th: at least the remaining
    // 6 instances replay.
    assert!(
        serial.replayed >= 6 * 8,
        "expected >= 48 replayed launches, got {}",
        serial.replayed
    );
    assert_eq!(
        serial.replayed, sharded.replayed,
        "drivers disagree on replay"
    );
}

/// Near-repeats — instances that agree except for one launch's privilege,
/// whose position follows an aperiodic (ruler) sequence — must never be
/// promoted: the detector verifies candidate periods element-for-element
/// before trusting them. (A *rotating* mismatch would itself be periodic
/// with period `PIECES` iterations and legitimately promotable.)
#[test]
fn near_repeats_are_never_promoted() {
    let mut stream = Vec::new();
    for iter in 1u32..13 {
        let odd = (iter.trailing_zeros() as usize) % PIECES;
        for k in 0..PIECES {
            stream.push(AbsLaunch {
                target: k,
                // One launch per "iteration" differs; its position is the
                // ruler sequence 0,1,0,2,0,1,0,3,... which has no period.
                privilege: if k == odd { 0 } else { 1 },
                salt: 7,
            });
        }
    }
    for engine in [EngineKind::RayCast, EngineKind::Warnock] {
        let out = run_program(engine, true, 1, false, &stream);
        assert_eq!(
            out.detected, 0,
            "{engine:?}: near-repeat stream was promoted"
        );
        assert_eq!(out.replayed, 0);
        let plain = run_program(engine, false, 1, false, &stream);
        assert_eq!(out.values, plain.values);
    }
}

/// Fences interrupt periodicity: a fence between instances resets the
/// detector, so a fenced loop never promotes.
#[test]
fn fences_break_detected_periodicity() {
    let mut rt = build_runtime(EngineKind::RayCast, true, 1);
    let (root, field, regions) = setup_regions(&mut rt);
    for iter in 0..8 {
        for k in 0..PIECES {
            let l = AbsLaunch {
                target: k,
                privilege: 1,
                salt: 7,
            };
            let s = spec_of(&l, iter * PIECES + k, &regions, field);
            rt.submit(LaunchSpec::new(
                s.name,
                s.node,
                s.reqs,
                s.duration_ns,
                s.body,
            ))
            .unwrap()
            .id();
        }
        rt.fence();
    }
    assert_eq!(rt.auto_traces_detected(), 0, "fenced loop must not promote");
    assert_eq!(rt.replayed_launches(), 0);
    let probe = rt.inline_read(root, field).unwrap();
    assert!(check_sufficiency(rt.forest(), rt.launches(), rt.dag()).is_empty());
    let _ = rt.execute_values();
    let _ = probe;
}

/// Manual traces take precedence: `begin_trace` during an active auto
/// trace demotes it, and both mechanisms produce correct values.
#[test]
fn manual_trace_supersedes_auto_trace() {
    let run = |auto: bool, manual: bool| -> Vec<f64> {
        let mut rt = build_runtime(EngineKind::RayCast, auto, 1);
        let (root, field, regions) = setup_regions(&mut rt);
        let mut i = 0;
        for _ in 0..6 {
            if manual {
                rt.try_begin_trace(9).unwrap();
            }
            for k in 0..PIECES {
                let l = AbsLaunch {
                    target: k,
                    privilege: 1,
                    salt: 5,
                };
                let s = spec_of(&l, i, &regions, field);
                rt.submit(LaunchSpec::new(
                    s.name,
                    s.node,
                    s.reqs,
                    s.duration_ns,
                    s.body,
                ))
                .unwrap()
                .id();
                i += 1;
            }
            if manual {
                rt.try_end_trace(9).unwrap();
            }
        }
        let probe = rt.inline_read(root, field).unwrap();
        assert!(check_sufficiency(rt.forest(), rt.launches(), rt.dag()).is_empty());
        let store = rt.execute_values();
        (0..N)
            .map(|x| store.inline(probe).get(Point::p1(x)))
            .collect()
    };
    let plain = run(false, false);
    assert_eq!(run(true, false), plain, "auto tracing changed values");
    assert_eq!(run(false, true), plain, "manual tracing changed values");
    assert_eq!(run(true, true), plain, "mixed tracing changed values");
}
