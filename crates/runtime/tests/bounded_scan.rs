//! Bounded-scan regression: per-launch analysis work must track the
//! *requirement's overlap* with live equivalence sets, not the live-set
//! count. Growing the live set 16x at fixed per-launch overlap (one
//! partition piece per launch) must leave the per-launch sweep work within
//! a small constant factor — if any per-launch full sweep creeps back into
//! the raycast scan path, this test catches it as a 16x blow-up.

use std::sync::Arc;
use viz_runtime::{
    EngineKind, LaunchSpec, PhysicalRegion, RegionRequirement, Runtime, RuntimeConfig,
};

/// Per-launch scan counters for a disjoint piece-writes program over an
/// `n`-way partition, `iters` rounds.
fn per_launch_scan(n: usize, iters: usize) -> (f64, f64) {
    let mut rt = Runtime::new(RuntimeConfig::base(EngineKind::RayCast).nodes(1));
    let root = rt.forest_mut().create_root_1d("A", (n * 8) as i64);
    let f = rt.forest_mut().add_field(root, "v");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", n);
    let body: viz_runtime::TaskBody = Arc::new(|rs: &mut [PhysicalRegion]| {
        rs[0].update_all(|_, v| v + 1.0);
    });
    for _ in 0..iters {
        for i in 0..n {
            let piece = rt.forest().subregion(p, i);
            rt.submit(LaunchSpec::new(
                "w",
                0,
                vec![RegionRequirement::read_write(piece, f)],
                0,
                Some(body.clone()),
            ))
            .unwrap();
        }
    }
    let stats = rt.stats();
    let launches = stats.tasks.max(1) as f64;
    (
        stats.state.sets_swept as f64 / launches,
        stats.state.candidates_visited as f64 / launches,
    )
}

#[test]
fn sweep_work_tracks_overlap_not_live_sets() {
    // Same per-launch overlap (one piece) at 16x the live-set count.
    let (small_swept, small_cand) = per_launch_scan(16, 8);
    let (large_swept, large_cand) = per_launch_scan(256, 8);
    assert!(
        small_swept > 0.0 && small_cand > 0.0,
        "instrumentation dead: {small_swept} swept, {small_cand} candidates per launch"
    );
    // Overlap is constant, so per-launch work may wobble (steady-state
    // effects, the dominating-write kill/recreate cycle) but must not
    // scale with the 16x live-set growth. A full sweep would show up as
    // a ~16x ratio; allow 3x as the constant-factor envelope.
    assert!(
        large_swept <= 3.0 * small_swept,
        "per-launch sets_swept grew with the live-set count: \
         {small_swept:.2} at n=16 vs {large_swept:.2} at n=256"
    );
    assert!(
        large_cand <= 3.0 * small_cand,
        "per-launch candidates_visited grew with the live-set count: \
         {small_cand:.2} at n=16 vs {large_cand:.2} at n=256"
    );
}

/// The counters flow through the stats front door and are cumulative:
/// more launches, monotonically more visits.
#[test]
fn counters_are_cumulative_and_exported() {
    let mut rt = Runtime::new(RuntimeConfig::base(EngineKind::RayCast).nodes(1));
    let root = rt.forest_mut().create_root_1d("A", 64);
    let f = rt.forest_mut().add_field(root, "v");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", 8);
    let mut last = 0u64;
    for round in 0..3 {
        for i in 0..8 {
            let piece = rt.forest().subregion(p, i);
            rt.submit(LaunchSpec::new(
                format!("r{round}"),
                0,
                vec![RegionRequirement::read_write(piece, f)],
                0,
                None,
            ))
            .unwrap();
        }
        let swept = rt.stats().state.sets_swept;
        assert!(swept > last, "sets_swept must advance every round");
        last = swept;
    }
}
