//! Tests for the ablation engine variants: they must be *functionally
//! identical* to their parents — only the cost/message profile differs.

use std::sync::Arc;
use viz_runtime::analysis::{raycast::RayCast, warnock::Warnock};
use viz_runtime::validate::check_sufficiency;
use viz_runtime::{
    CoherenceEngine, EngineKind, LaunchSpec, PhysicalRegion, RegionRequirement, Runtime,
    RuntimeConfig,
};

/// Drive a ghost-exchange loop through a custom engine; return final values
/// and (edges, makespan-relevant counters).
fn run(engine: Box<dyn CoherenceEngine>, nodes: usize) -> (Vec<f64>, usize) {
    let mut rt = Runtime::with_engine(RuntimeConfig::new(EngineKind::RayCast).nodes(nodes), engine);
    let root = rt.forest_mut().create_root_1d("A", 48);
    let f = rt.forest_mut().add_field(root, "v");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", 4);
    let g = rt.forest_mut().create_partition(
        root,
        "G",
        (0..4)
            .map(|i| {
                let lo = (i * 12 - 2).max(0);
                let hi = (i * 12 + 13).min(47);
                viz_geometry::IndexSpace::span(lo, hi)
                    .subtract(&viz_geometry::IndexSpace::span(i * 12, i * 12 + 11))
            })
            .collect(),
    );
    rt.try_set_initial(root, f, |p| p.x as f64).unwrap();
    for iter in 0..3 {
        for i in 0..4 {
            let piece = rt.forest().subregion(p, i);
            rt.submit(LaunchSpec::new(
                format!("w{iter}"),
                i % nodes,
                vec![RegionRequirement::read_write(piece, f)],
                100,
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|_, v| v + 1.0);
                })),
            ))
            .unwrap()
            .id();
        }
        for i in 0..4 {
            let ghost = rt.forest().subregion(g, i);
            rt.submit(LaunchSpec::new(
                format!("r{iter}"),
                i % nodes,
                vec![RegionRequirement::reduce(
                    ghost,
                    f,
                    viz_region::RedOpRegistry::SUM,
                )],
                100,
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    let dom = rs[0].domain().clone();
                    for pt in dom.points() {
                        rs[0].reduce(pt, 2.0);
                    }
                })),
            ))
            .unwrap()
            .id();
        }
    }
    let probe = rt.inline_read(root, f).unwrap();
    assert!(check_sufficiency(rt.forest(), rt.launches(), rt.dag()).is_empty());
    let edges = rt.dag().edge_count();
    let store = rt.execute_values();
    let vals = store.inline(probe).iter().map(|(_, v)| v).collect();
    (vals, edges)
}

#[test]
fn warnock_without_memoization_is_functionally_identical() {
    let (v1, e1) = run(Box::new(Warnock::new()), 2);
    let (v2, e2) = run(Box::new(Warnock::without_memoization()), 2);
    assert_eq!(v1, v2);
    assert_eq!(
        e1, e2,
        "memoization must not change the dependence relation"
    );
}

#[test]
fn raycast_forced_kd_is_functionally_identical() {
    let (v1, e1) = run(Box::new(RayCast::new()), 2);
    let (v2, e2) = run(Box::new(RayCast::force_kd_tree()), 2);
    assert_eq!(v1, v2);
    assert_eq!(e1, e2, "the index choice must not change the analysis");
}

#[test]
fn variants_match_the_default_engines_cross_family() {
    let (v1, _) = run(Box::new(Warnock::new()), 1);
    let (v2, _) = run(Box::new(RayCast::new()), 1);
    let (v3, _) = run(Box::new(RayCast::force_kd_tree()), 1);
    assert_eq!(v1, v2);
    assert_eq!(v2, v3);
}
