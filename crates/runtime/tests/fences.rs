//! Execution fences: everything before a fence precedes it; a fence joins
//! all concurrency.

use viz_runtime::{EngineKind, LaunchSpec, RegionRequirement, Runtime, TaskId};

#[test]
fn fence_depends_on_everything_prior() {
    let mut rt = Runtime::single_node(EngineKind::RayCast);
    let root = rt.forest_mut().create_root_1d("A", 16);
    let f = rt.forest_mut().add_field(root, "v");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", 4);
    for i in 0..4 {
        let piece = rt.forest().subregion(p, i);
        rt.submit(LaunchSpec::new(
            "w",
            0,
            vec![RegionRequirement::read_write(piece, f)],
            10,
            None,
        ))
        .unwrap()
        .id();
    }
    let fence = rt.fence();
    assert_eq!(rt.dag().preds(fence).len(), 4);
    // The fence joins the waves: everything after must follow it
    // transitively if it depends on the fence's predecessors... and the
    // timed schedule places it after all four writers.
    let report = rt.timed_schedule();
    for t in 0..4usize {
        assert!(report.completion[4] >= report.completion[t]);
    }
}

#[test]
fn fence_on_empty_runtime_is_fine() {
    let mut rt = Runtime::single_node(EngineKind::Paint);
    let fence = rt.fence();
    assert_eq!(fence, TaskId(0));
    assert!(rt.dag().preds(fence).is_empty());
    rt.execute_values();
}

#[test]
fn fences_chain() {
    let mut rt = Runtime::single_node(EngineKind::Warnock);
    let f1 = rt.fence();
    let f2 = rt.fence();
    assert_eq!(rt.dag().preds(f2), &[f1]);
}
