//! Mapping policies change *where* data moves, never *what* is computed:
//! the same program under different mappers must produce identical values
//! and dependence graphs, while the simulated communication volume reflects
//! the locality of the placement.

use std::sync::Arc;
use viz_runtime::mapper::{Blocked, Mapper, RoundRobin, Scattered, SingleNode};
use viz_runtime::{
    EngineKind, LaunchSpec, PhysicalRegion, RegionRequirement, Runtime, RuntimeConfig,
};

fn run_with_mapper(mapper: &dyn Mapper, nodes: usize) -> (Vec<f64>, usize, u64, u64) {
    let pieces = 8usize;
    let mut rt = Runtime::new(
        RuntimeConfig::new(EngineKind::RayCast)
            .nodes(nodes)
            .dcr(true),
    );
    let root = rt.forest_mut().create_root_1d("A", 64);
    let f = rt.forest_mut().add_field(root, "v");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", pieces);
    // Halo partition: one neighbor cell each side.
    let g = rt.forest_mut().create_partition(
        root,
        "G",
        (0..pieces as i64)
            .map(|i| {
                let lo = (i * 8 - 1).max(0);
                let hi = (i * 8 + 8).min(63);
                viz_geometry::IndexSpace::span(lo, hi)
                    .subtract(&viz_geometry::IndexSpace::span(i * 8, i * 8 + 7))
            })
            .collect(),
    );
    rt.try_set_initial(root, f, |pt| pt.x as f64).unwrap();
    for _iter in 0..3 {
        for i in 0..pieces {
            let piece = rt.forest().subregion(p, i);
            let halo = rt.forest().subregion(g, i);
            rt.submit(LaunchSpec::new(
                "step",
                mapper.place(i, pieces, nodes),
                vec![
                    RegionRequirement::read_write(piece, f),
                    RegionRequirement::read(halo, f),
                ],
                10_000,
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    let (w, r) = rs.split_at_mut(1);
                    let dom = w[0].domain().clone();
                    let lo = dom.bbox().lo.x;
                    let hi = dom.bbox().hi.x;
                    for pt in dom.points() {
                        let left = if pt.x == lo && r[0].contains(pt.offset(-1, 0)) {
                            r[0].get(pt.offset(-1, 0))
                        } else if pt.x > lo {
                            w[0].get(pt.offset(-1, 0))
                        } else {
                            0.0
                        };
                        let right = if pt.x == hi && r[0].contains(pt.offset(1, 0)) {
                            r[0].get(pt.offset(1, 0))
                        } else if pt.x < hi {
                            w[0].get(pt.offset(1, 0))
                        } else {
                            0.0
                        };
                        // Order matters but each point uses pre-iteration
                        // neighbor values only through the halo; interior
                        // reads are from the same (already updated) tile,
                        // which is fine for a determinism test: the same
                        // body runs under every mapper.
                        let v = w[0].get(pt);
                        w[0].set(pt, v + (left + right) * 0.25);
                    }
                })),
            ))
            .unwrap()
            .id();
        }
    }
    let probe = rt.inline_read(root, f).unwrap();
    let edges = rt.dag().edge_count();
    let report = rt.timed_schedule();
    let makespan = report.makespan;
    let bytes = rt.machine().counters().bytes;
    let store = rt.execute_values();
    let vals = store.inline(probe).iter().map(|(_, v)| v).collect();
    (vals, edges, bytes, makespan)
}

#[test]
fn values_and_dag_are_mapper_independent() {
    let nodes = 4;
    let (v0, e0, _, _) = run_with_mapper(&RoundRobin, nodes);
    for mapper in [
        &Blocked as &dyn Mapper,
        &SingleNode(0),
        &Scattered { seed: 7 },
    ] {
        let (v, e, _, _) = run_with_mapper(mapper, nodes);
        assert_eq!(v, v0, "{} changed values", mapper.name());
        assert_eq!(e, e0, "{} changed the DAG", mapper.name());
    }
}

#[test]
fn blocked_moves_less_data_than_scattered() {
    let nodes = 4;
    let (_, _, blocked_bytes, _) = run_with_mapper(&Blocked, nodes);
    let (_, _, scattered_bytes, _) = run_with_mapper(&Scattered { seed: 7 }, nodes);
    assert!(
        blocked_bytes < scattered_bytes,
        "blocked placement must move less halo data: {blocked_bytes} vs {scattered_bytes}"
    );
}

#[test]
fn single_node_serializes_execution() {
    let nodes = 4;
    let (_, _, _, pinned) = run_with_mapper(&SingleNode(0), nodes);
    let (_, _, _, spread) = run_with_mapper(&RoundRobin, nodes);
    assert!(
        pinned > spread,
        "one GPU must be slower than four: {pinned} vs {spread}"
    );
}
