//! Multi-producer submission-plane tests (PR 7).
//!
//! Tenant contexts submitting concurrently through per-context rings must
//! be *transparent*: each tenant's stream sees exactly the dependences and
//! values it would see running alone on its own runtime, regardless of how
//! the combining dispatcher interleaves the streams. The differential
//! below drives disjoint per-tenant region trees through all four engines,
//! serial and sharded, auto-tracing on and off, and projects the shared
//! run's global history back onto each tenant for comparison against a
//! solo synchronous run. Directed tests pin down scoped fences, ring-slot
//! recycling, typed ring exhaustion, and the combining metrics.

use proptest::prelude::*;
use std::sync::Arc;
use viz_geometry::Point;
use viz_region::{FieldId, Privilege, RedOpRegistry, RegionId};
use viz_runtime::{
    EngineKind, LaunchSpec, PhysicalRegion, RegionRequirement, Runtime, RuntimeConfig,
    RuntimeError, TaskId,
};

const N: i64 = 32;
const PIECES: usize = 4;
const TENANTS: usize = 3;

/// One abstract launch against a tenant's private tree.
#[derive(Clone, Debug)]
struct TLaunch {
    target: usize, // 0..PIECES = piece, PIECES = the whole root
    privilege: u8, // 0 = read, 1 = rw, 2 = reduce-sum
    salt: u32,
}

fn t_launch() -> impl Strategy<Value = TLaunch> {
    ((0..PIECES + 1), 0u8..3, 0u32..100).prop_map(|(target, privilege, salt)| TLaunch {
        target,
        privilege,
        salt,
    })
}

fn streams() -> impl Strategy<Value = Vec<Vec<TLaunch>>> {
    prop::collection::vec(
        prop::collection::vec(t_launch(), 1..7),
        TENANTS..TENANTS + 1,
    )
}

/// Create tenant `t`'s private root, field, and equal partition. Region
/// list is the pieces followed by the root itself.
fn setup_tenant(rt: &mut Runtime, t: usize) -> (RegionId, FieldId, Vec<RegionId>) {
    let root = rt.forest_mut().create_root_1d(format!("R{t}"), N);
    let field = rt.forest_mut().add_field(root, "v");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", PIECES);
    let mut regions: Vec<RegionId> = (0..PIECES).map(|k| rt.forest().subregion(p, k)).collect();
    regions.push(root);
    rt.try_set_initial(root, field, move |pt| ((pt.x * (t as i64 + 3)) % 17) as f64)
        .expect("fresh tenant root");
    (root, field, regions)
}

fn spec_of(l: &TLaunch, i: usize, regions: &[RegionId], field: FieldId) -> LaunchSpec {
    let region = regions[l.target];
    let salt = l.salt as f64 + i as f64;
    let (privilege, body): (Privilege, viz_runtime::TaskBody) = match l.privilege {
        0 => (Privilege::Read, Arc::new(|_: &mut [PhysicalRegion]| {})),
        1 => (
            Privilege::ReadWrite,
            Arc::new(move |rs: &mut [PhysicalRegion]| {
                rs[0].update_all(|pt, v| ((v * 3.0 + salt + pt.x as f64) as i64 % 257) as f64);
            }),
        ),
        _ => (
            Privilege::Reduce(RedOpRegistry::SUM),
            Arc::new(move |rs: &mut [PhysicalRegion]| {
                let dom = rs[0].domain().clone();
                for pt in dom.points() {
                    rs[0].reduce(pt, ((salt as i64 + pt.x) % 13) as f64);
                }
            }),
        ),
    };
    LaunchSpec::new(
        format!("t{i}"),
        l.target % 2,
        vec![RegionRequirement::new(region, field, privilege)],
        100,
        Some(body),
    )
}

/// Tenant `t`'s stream run alone, synchronously: the reference each
/// projection must match.
fn run_solo(
    engine: EngineKind,
    auto: bool,
    threads: usize,
    t: usize,
    stream: &[TLaunch],
) -> (Vec<Vec<u32>>, Vec<f64>) {
    let mut rt = Runtime::new(
        RuntimeConfig::new(engine)
            .nodes(2)
            .analysis_threads(threads)
            .auto_trace(auto),
    );
    let (root, field, regions) = setup_tenant(&mut rt, t);
    for (i, l) in stream.iter().enumerate() {
        rt.submit(spec_of(l, i, &regions, field))
            .expect("generated launches are valid");
    }
    let probe = rt.inline_read(root, field).unwrap();
    let results = rt.results();
    let deps = results
        .iter()
        .take(stream.len())
        .map(|r| r.deps.iter().map(|d| d.0).collect())
        .collect();
    let store = rt.execute_values();
    let values = (0..N)
        .map(|x| store.inline(probe).get(Point::p1(x)))
        .collect();
    (deps, values)
}

/// All tenants sharing one engine, each submitting its stream from its own
/// thread through its own context. Returns, per tenant, the dependences
/// projected onto that tenant's local submission order, and the final
/// values of its root.
fn run_multi(
    engine: EngineKind,
    auto: bool,
    threads: usize,
    pipelined: bool,
    streams: &[Vec<TLaunch>],
) -> (Vec<Vec<Vec<u32>>>, Vec<Vec<f64>>) {
    let mut rt = Runtime::new(
        RuntimeConfig::new(engine)
            .nodes(2)
            .analysis_threads(threads)
            .auto_trace(auto)
            .pipeline(pipelined)
            .submit_rings(streams.len() + 1),
    );
    let setups: Vec<_> = (0..streams.len())
        .map(|t| setup_tenant(&mut rt, t))
        .collect();
    let mut ctxs: Vec<_> = (0..streams.len())
        .map(|_| rt.new_context().expect("one ring per tenant"))
        .collect();
    let resolved: Vec<Vec<TaskId>> = std::thread::scope(|s| {
        let joins: Vec<_> = ctxs
            .iter_mut()
            .zip(streams)
            .zip(&setups)
            .map(|((ctx, stream), (_, field, regions))| {
                let field = *field;
                s.spawn(move || {
                    let handles: Vec<_> = stream
                        .iter()
                        .enumerate()
                        .map(|(i, l)| {
                            ctx.submit(spec_of(l, i, regions, field))
                                .expect("generated launches are valid")
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.resolve().expect("driver alive"))
                        .collect::<Vec<TaskId>>()
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("producer thread"))
            .collect()
    });
    drop(ctxs);
    let results = rt.results();
    let mut deps_out = Vec::new();
    for (t, ids) in resolved.iter().enumerate() {
        let local: std::collections::HashMap<u32, u32> = ids
            .iter()
            .enumerate()
            .map(|(i, g)| (g.0, i as u32))
            .collect();
        let deps: Vec<Vec<u32>> = ids
            .iter()
            .map(|g| {
                results[g.0 as usize]
                    .deps
                    .iter()
                    .map(|d| {
                        *local.get(&d.0).unwrap_or_else(|| {
                            panic!("tenant {t}: dependence on task {} escapes its tree", d.0)
                        })
                    })
                    .collect()
            })
            .collect();
        deps_out.push(deps);
    }
    let probes: Vec<TaskId> = setups
        .iter()
        .map(|(root, field, _)| rt.inline_read(*root, *field).unwrap())
        .collect();
    let store = rt.execute_values();
    let values = probes
        .iter()
        .map(|p| (0..N).map(|x| store.inline(*p).get(Point::p1(x))).collect())
        .collect();
    (deps_out, values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The tentpole differential: multi-producer pipelined == multi-context
    /// synchronous == each tenant solo, over every engine, serial and
    /// sharded analysis, auto-tracing on and off.
    #[test]
    fn tenant_streams_are_transparent(streams in streams()) {
        for engine in [
            EngineKind::PaintNaive,
            EngineKind::Paint,
            EngineKind::Warnock,
            EngineKind::RayCast,
        ] {
            for auto in [false, true] {
                for threads in [1, 4] {
                    let (sync_deps, sync_vals) = run_multi(engine, auto, threads, false, &streams);
                    let (piped_deps, piped_vals) = run_multi(engine, auto, threads, true, &streams);
                    prop_assert_eq!(
                        &piped_deps, &sync_deps,
                        "{:?} auto={} threads={}: rings changed dependences",
                        engine, auto, threads
                    );
                    prop_assert_eq!(
                        &piped_vals, &sync_vals,
                        "{:?} auto={} threads={}: rings changed values",
                        engine, auto, threads
                    );
                    for (t, stream) in streams.iter().enumerate() {
                        let (solo_deps, solo_vals) = run_solo(engine, auto, threads, t, stream);
                        prop_assert_eq!(
                            &piped_deps[t], &solo_deps,
                            "{:?} auto={} threads={} tenant {}: shared engine changed dependences",
                            engine, auto, threads, t
                        );
                        prop_assert_eq!(
                            &piped_vals[t], &solo_vals,
                            "{:?} auto={} threads={} tenant {}: shared engine changed values",
                            engine, auto, threads, t
                        );
                    }
                }
            }
        }
    }
}

/// A scoped fence binds exactly its own context's launches — concurrent
/// launches from another tenant float past it.
#[test]
fn scoped_fence_orders_only_its_context() {
    let mut rt = Runtime::new(
        RuntimeConfig::new(EngineKind::RayCast)
            .pipeline(true)
            .submit_rings(3),
    );
    let (_ra, fa, ra_regions) = setup_tenant(&mut rt, 0);
    let (_rb, fb, rb_regions) = setup_tenant(&mut rt, 1);
    let mut ca = rt.new_context().unwrap();
    let mut cb = rt.new_context().unwrap();
    let mut a_handles = Vec::new();
    for i in 0..3 {
        let l = TLaunch {
            target: PIECES,
            privilege: 1,
            salt: i as u32,
        };
        a_handles.push(ca.submit(spec_of(&l, i, &ra_regions, fa)).unwrap());
    }
    for i in 0..2 {
        let l = TLaunch {
            target: PIECES,
            privilege: 1,
            salt: 9,
        };
        cb.submit(spec_of(&l, i, &rb_regions, fb)).unwrap();
    }
    let fence = ca.fence().expect("driver alive");
    let mut expect: Vec<u32> = a_handles
        .into_iter()
        .map(|h| h.resolve().unwrap().0)
        .collect();
    expect.sort_unstable();
    drop(ca);
    drop(cb);
    let dag = rt.dag();
    let mut preds: Vec<u32> = dag.preds(fence).iter().map(|t| t.0).collect();
    preds.sort_unstable();
    assert_eq!(
        preds, expect,
        "scoped fence must depend on exactly its own context's launches"
    );
}

/// Ring slots recycle: live contexts are bounded by `submit_rings - 1`,
/// exhaustion is a typed error, and dropped slots are reclaimed by later
/// tenants indefinitely.
#[test]
fn ring_slots_recycle_and_exhaustion_is_typed() {
    let mut rt = Runtime::new(
        RuntimeConfig::new(EngineKind::Paint)
            .pipeline(true)
            .submit_rings(2),
    );
    let (_root, field, regions) = setup_tenant(&mut rt, 0);
    let c1 = rt.new_context().unwrap();
    match rt.new_context() {
        Err(RuntimeError::RingsExhausted { rings }) => assert_eq!(rings, 2),
        Ok(_) => panic!("second tenant cannot claim a ring"),
        Err(e) => panic!("expected RingsExhausted, got {e}"),
    }
    drop(c1);
    let mut total = 0u32;
    for round in 0..6u32 {
        let mut c = rt.new_context().expect("dropped slot was reclaimed");
        let l = TLaunch {
            target: PIECES,
            privilege: 1,
            salt: round,
        };
        let h = c
            .submit(spec_of(&l, round as usize, &regions, field))
            .unwrap();
        assert_eq!(h.resolve().unwrap(), TaskId(total));
        total += 1;
        drop(c);
    }
    rt.flush();
    assert_eq!(rt.num_tasks(), total as usize);
}

/// Two producers flooding 4-deep rings with serial-scan-heavy launches:
/// the dispatcher falls behind, both producers stall, and the combining
/// sweep must repeatedly drain both rings under one lock acquisition. The
/// per-ring metrics decompose the global counters exactly.
#[test]
fn combining_dispatcher_merges_concurrent_streams() {
    let mut rt = Runtime::new(
        RuntimeConfig::new(EngineKind::PaintNaive)
            .nodes(2)
            .pipeline(true)
            .pipeline_depth(4)
            .submit_rings(3),
    );
    let (root_a, field_a, _) = setup_tenant(&mut rt, 0);
    let (root_b, field_b, _) = setup_tenant(&mut rt, 1);
    let metrics = rt.pipeline_metrics().unwrap();
    const COUNT: usize = 120;
    let mut ca = rt.new_context().unwrap();
    let mut cb = rt.new_context().unwrap();
    std::thread::scope(|s| {
        for (ctx, root, field) in [(&mut ca, root_a, field_a), (&mut cb, root_b, field_b)] {
            s.spawn(move || {
                for i in 0..COUNT {
                    // Full-root read-writes: the serial history scan grows
                    // quadratically, so the dispatcher falls behind and
                    // both rings fill.
                    ctx.submit(LaunchSpec::new(
                        format!("t{i}"),
                        0,
                        vec![RegionRequirement::read_write(root, field)],
                        0,
                        None,
                    ))
                    .unwrap();
                }
            });
        }
    });
    drop(ca);
    drop(cb);
    rt.flush();
    assert_eq!(metrics.submitted(), 2 * COUNT as u64);
    assert_eq!(metrics.retired(), 2 * COUNT as u64);
    assert_eq!(metrics.combined_specs(), metrics.retired());
    assert!(metrics.combines() >= 1);
    assert!(metrics.max_combine() >= 1);
    // Depth counts in-flight specs: up to `pipeline_depth` queued in the
    // ring plus up to `pipeline_depth` popped but not yet committed, per
    // ring — so 2×4 per producer, summed across the two producers.
    assert!(
        metrics.max_depth() >= 1 && metrics.max_depth() <= 16,
        "in-flight depth is bounded by rings x 2 x pipeline_depth (got {})",
        metrics.max_depth()
    );
    assert!(
        metrics.ring(1).max_depth <= 8 && metrics.ring(2).max_depth <= 8,
        "per-ring in-flight depth is bounded by 2 x pipeline_depth"
    );
    assert!(
        metrics.multi_ring_combines() >= 1,
        "two stalled producers must co-occur in at least one sweep"
    );
    let ring_submitted: u64 = (0..3).map(|i| metrics.ring(i).submitted).sum();
    assert_eq!(ring_submitted, metrics.submitted());
    assert_eq!(
        metrics.ring(1).submitted + metrics.ring(2).submitted,
        2 * COUNT as u64,
        "tenant rings carry every launch"
    );
    assert!(
        metrics.ring(1).stalls > 0 && metrics.ring(2).stalls > 0,
        "4-deep rings under serial-scan launches must stall both producers"
    );
    let ring_stalls: u64 = (0..3).map(|i| metrics.ring(i).stalls).sum();
    assert_eq!(ring_stalls, metrics.stalls());
    assert_eq!(rt.num_tasks(), 2 * COUNT);
}
