//! Pipelined-frontend tests (PR 4).
//!
//! The pipelined submission frontend must be *transparent*: enabling it may
//! only change when analysis runs (on a driver thread, overlapped with
//! submission), never what it computes. Random aliased/reduction-heavy
//! programs run pipelined and synchronous, through all four engines with
//! auto-tracing on and off, and must agree on dependences, plans, and
//! executed values. The drain semantics (fence, inline_read, end_trace,
//! drop) and the typed error paths are pinned down by directed tests.

use proptest::prelude::*;
use std::sync::Arc;
use viz_geometry::{IndexSpace, Point, Rect};
use viz_region::{Privilege, RedOpRegistry};
use viz_runtime::validate::check_sufficiency;
use viz_runtime::{
    EngineKind, LaunchSpec, PhysicalRegion, RegionRequirement, Runtime, RuntimeConfig,
    RuntimeError, TaskId,
};

const N: i64 = 48;
const PIECES: usize = 4;

/// One abstract launch (same shape as the autotracing differential tests).
#[derive(Clone, Debug)]
struct AbsLaunch {
    target: usize, // 0..PIECES = primary piece, PIECES..2*PIECES = ghost
    privilege: u8, // 0 = read, 1 = rw, 2 = reduce-sum
    salt: u32,     // body constant (does not affect the signature)
}

fn abs_launch() -> impl Strategy<Value = AbsLaunch> {
    ((0..2 * PIECES), 0u8..3, 0u32..1000).prop_map(|(target, privilege, salt)| AbsLaunch {
        target,
        privilege,
        salt,
    })
}

/// A program with a repeating unit, so auto-tracing has something to
/// promote while the pipeline chunks the stream arbitrarily underneath it.
#[derive(Clone, Debug)]
struct Program {
    prefix: Vec<AbsLaunch>,
    unit: Vec<AbsLaunch>,
    repeats: usize,
    suffix: Vec<AbsLaunch>,
}

impl Program {
    fn stream(&self) -> Vec<AbsLaunch> {
        let mut out = self.prefix.clone();
        for _ in 0..self.repeats {
            out.extend(self.unit.iter().cloned());
        }
        out.extend(self.suffix.iter().cloned());
        out
    }
}

fn program() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(abs_launch(), 0..4),
        prop::collection::vec(abs_launch(), 1..6),
        1usize..8,
        prop::collection::vec(abs_launch(), 0..4),
    )
        .prop_map(|(prefix, unit, repeats, suffix)| Program {
            prefix,
            unit,
            repeats,
            suffix,
        })
}

fn build_runtime(engine: EngineKind, auto: bool, threads: usize, pipelined: bool) -> Runtime {
    Runtime::new(
        RuntimeConfig::new(engine)
            .nodes(2)
            .analysis_threads(threads)
            .auto_trace(auto)
            .pipeline(pipelined),
    )
}

fn setup_regions(
    rt: &mut Runtime,
) -> (
    viz_region::RegionId,
    viz_region::FieldId,
    Vec<viz_region::RegionId>,
) {
    let root = rt.forest_mut().create_root_1d("A", N);
    let field = rt.forest_mut().add_field(root, "v");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", PIECES);
    let chunk = N / PIECES as i64;
    let ghosts: Vec<IndexSpace> = (0..PIECES as i64)
        .map(|i| {
            let lo = i * chunk;
            let hi = (i + 1) * chunk - 1;
            let mut rects = Vec::new();
            if lo > 0 {
                rects.push(Rect::span(lo - 2, lo - 1));
            }
            if hi < N - 1 {
                rects.push(Rect::span(hi + 1, (hi + 2).min(N - 1)));
            }
            IndexSpace::from_rects(rects)
        })
        .collect();
    let g = rt.forest_mut().create_partition(root, "G", ghosts);
    rt.try_set_initial(root, field, |pt| (pt.x % 17) as f64)
        .expect("root field exists");
    let mut regions = Vec::new();
    for k in 0..PIECES {
        regions.push(rt.forest().subregion(p, k));
    }
    for k in 0..PIECES {
        regions.push(rt.forest().subregion(g, k));
    }
    (root, field, regions)
}

fn spec_of(
    l: &AbsLaunch,
    i: usize,
    regions: &[viz_region::RegionId],
    field: viz_region::FieldId,
) -> LaunchSpec {
    let region = regions[l.target];
    let salt = l.salt as f64 + i as f64;
    let (privilege, body): (Privilege, viz_runtime::TaskBody) = match l.privilege {
        0 => (Privilege::Read, Arc::new(|_: &mut [PhysicalRegion]| {})),
        1 => (
            Privilege::ReadWrite,
            Arc::new(move |rs: &mut [PhysicalRegion]| {
                rs[0].update_all(|pt, v| ((v * 3.0 + salt + pt.x as f64) as i64 % 257) as f64);
            }),
        ),
        _ => (
            Privilege::Reduce(RedOpRegistry::SUM),
            Arc::new(move |rs: &mut [PhysicalRegion]| {
                let dom = rs[0].domain().clone();
                for pt in dom.points() {
                    rs[0].reduce(pt, ((salt as i64 + pt.x) % 13) as f64);
                }
            }),
        ),
    };
    LaunchSpec::new(
        format!("t{i}"),
        l.target % 2,
        vec![RegionRequirement::new(region, field, privilege)],
        100,
        Some(body),
    )
}

struct Outcome {
    values: Vec<f64>,
    deps: Vec<Vec<u32>>,
    plans_fingerprint: usize,
    replayed: u64,
    detected: u64,
}

/// Run one program. `pipelined` routes every submission through the
/// bounded queue and the analysis driver thread; otherwise analysis runs
/// inline on this thread. Either way launches are submitted one at a time
/// (maximum overlap for the pipeline to exploit).
fn run_program(
    engine: EngineKind,
    auto: bool,
    threads: usize,
    pipelined: bool,
    stream: &[AbsLaunch],
) -> Outcome {
    let mut rt = build_runtime(engine, auto, threads, pipelined);
    let (root, field, regions) = setup_regions(&mut rt);
    for (i, l) in stream.iter().enumerate() {
        let h = rt
            .submit(spec_of(l, i, &regions, field))
            .expect("generated launches are valid");
        assert_eq!(h.id(), TaskId(i as u32), "handles are program-ordered");
    }
    let probe = rt.inline_read(root, field).unwrap();
    let violations = check_sufficiency(rt.forest(), rt.launches(), rt.dag());
    assert!(
        violations.is_empty(),
        "{engine:?} auto={auto} pipelined={pipelined}: unsound DAG: {violations:?}"
    );
    let results = rt.results();
    let deps: Vec<Vec<u32>> = results
        .iter()
        .map(|r| r.deps.iter().map(|d| d.0).collect())
        .collect();
    let plans_fingerprint = results.iter().map(|r| r.plans.len()).sum::<usize>()
        + results
            .iter()
            .flat_map(|r| &r.plans)
            .map(|p| p.copies.len() + p.reductions.len())
            .sum::<usize>();
    let replayed = rt.replayed_launches();
    let detected = rt.auto_traces_detected();
    let store = rt.execute_values();
    let values: Vec<f64> = (0..N)
        .map(|x| store.inline(probe).get(Point::p1(x)))
        .collect();
    Outcome {
        values,
        deps,
        plans_fingerprint,
        replayed,
        detected,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The pipeline may only change *when* analysis runs, never what it
    /// computes: identical values, dependences, and plans vs the
    /// synchronous path, across all four engines, serial and sharded
    /// drivers, auto-tracing on and off.
    #[test]
    fn pipelined_equals_synchronous(p in program()) {
        let stream = p.stream();
        let reference = run_program(EngineKind::PaintNaive, false, 1, false, &stream);
        for engine in [
            EngineKind::PaintNaive,
            EngineKind::Paint,
            EngineKind::Warnock,
            EngineKind::RayCast,
        ] {
            for auto in [false, true] {
                for threads in [1, 4] {
                    let sync = run_program(engine, auto, threads, false, &stream);
                    let piped = run_program(engine, auto, threads, true, &stream);
                    prop_assert_eq!(
                        &piped.values, &reference.values,
                        "{:?} auto={} threads={}: pipeline changed values",
                        engine, auto, threads
                    );
                    prop_assert_eq!(
                        &piped.deps, &sync.deps,
                        "{:?} auto={} threads={}: pipeline changed dependences",
                        engine, auto, threads
                    );
                    prop_assert_eq!(
                        piped.plans_fingerprint, sync.plans_fingerprint,
                        "{:?} auto={} threads={}: pipeline changed plans",
                        engine, auto, threads
                    );
                    prop_assert_eq!(
                        (piped.replayed, piped.detected),
                        (sync.replayed, sync.detected),
                        "{:?} auto={} threads={}: pipeline changed trace statistics",
                        engine, auto, threads
                    );
                }
            }
        }
    }
}

/// `fence` is a drain point: the fence task is ordered after every queued
/// launch and gets the next program-order id.
#[test]
fn fence_observes_all_queued_launches() {
    let mut rt = build_runtime(EngineKind::RayCast, false, 1, true);
    let (_root, field, regions) = setup_regions(&mut rt);
    for i in 0..PIECES {
        let l = AbsLaunch {
            target: i,
            privilege: 1,
            salt: 3,
        };
        rt.submit(spec_of(&l, i, &regions, field)).unwrap();
    }
    let f = rt.fence();
    assert_eq!(f, TaskId(PIECES as u32), "fence id follows the queued wave");
    let dag = rt.dag();
    let preds = dag.preds(f);
    assert_eq!(
        preds,
        (0..PIECES as u32).map(TaskId).collect::<Vec<_>>(),
        "fence must depend on every queued launch"
    );
}

/// `inline_read` is itself a submission: FIFO order alone guarantees it
/// observes every earlier queued write without draining.
#[test]
fn inline_read_observes_queued_writes() {
    let mut rt = build_runtime(EngineKind::Warnock, false, 1, true);
    let (root, field, regions) = setup_regions(&mut rt);
    for i in 0..2 * PIECES {
        let l = AbsLaunch {
            target: i % PIECES,
            privilege: 1,
            salt: 11,
        };
        rt.submit(spec_of(&l, i, &regions, field)).unwrap();
    }
    let probe = rt.inline_read(root, field).unwrap();
    let store = rt.execute_values();
    // Reference: the same program, synchronous.
    let mut rt2 = build_runtime(EngineKind::Warnock, false, 1, false);
    let (root2, field2, regions2) = setup_regions(&mut rt2);
    for i in 0..2 * PIECES {
        let l = AbsLaunch {
            target: i % PIECES,
            privilege: 1,
            salt: 11,
        };
        rt2.submit(spec_of(&l, i, &regions2, field2)).unwrap();
    }
    let probe2 = rt2.inline_read(root2, field2).unwrap();
    let store2 = rt2.execute_values();
    for x in 0..N {
        assert_eq!(
            store.inline(probe).get(Point::p1(x)),
            store2.inline(probe2).get(Point::p1(x)),
            "inline read missed queued writes at {x}"
        );
    }
}

/// Manual traces over the pipelined frontend: begin/end drain, the
/// recorded instances replay, and values match the synchronous run.
#[test]
fn manual_traces_drain_and_replay_pipelined() {
    let run = |pipelined: bool| -> (Vec<f64>, u64) {
        let mut rt = build_runtime(EngineKind::RayCast, false, 1, pipelined);
        let (root, field, regions) = setup_regions(&mut rt);
        let mut i = 0;
        for _ in 0..5 {
            rt.try_begin_trace(7).expect("no trace is open");
            for k in 0..PIECES {
                let l = AbsLaunch {
                    target: k,
                    privilege: 1,
                    salt: 5,
                };
                rt.submit(spec_of(&l, i, &regions, field)).unwrap();
                i += 1;
            }
            rt.try_end_trace(7).expect("trace 7 is open");
        }
        let probe = rt.inline_read(root, field).unwrap();
        let replayed = rt.replayed_launches();
        let store = rt.execute_values();
        let values = (0..N)
            .map(|x| store.inline(probe).get(Point::p1(x)))
            .collect();
        (values, replayed)
    };
    let (sync_values, sync_replayed) = run(false);
    let (piped_values, piped_replayed) = run(true);
    assert_eq!(
        piped_values, sync_values,
        "tracing + pipeline changed values"
    );
    assert_eq!(piped_replayed, sync_replayed, "replay counts diverged");
    assert!(
        sync_replayed >= 2 * PIECES as u64,
        "instances 4 and 5 replay"
    );
}

/// Dropping a runtime with a non-empty queue flushes it: every submitted
/// launch retires before the driver exits (observed through the metrics
/// handle, which outlives the runtime).
#[test]
fn drop_flushes_queued_launches() {
    let mut rt = build_runtime(EngineKind::Paint, false, 1, true);
    let (_root, field, regions) = setup_regions(&mut rt);
    let metrics = rt.pipeline_metrics().expect("pipelined runtime");
    const COUNT: usize = 100;
    for i in 0..COUNT {
        let l = AbsLaunch {
            target: i % (2 * PIECES),
            privilege: (i % 3) as u8,
            salt: 1,
        };
        rt.submit(spec_of(&l, i, &regions, field)).unwrap();
    }
    drop(rt);
    assert_eq!(metrics.submitted(), COUNT as u64);
    assert_eq!(
        metrics.retired(),
        COUNT as u64,
        "drop lost queued launches: {}/{} retired",
        metrics.retired(),
        metrics.submitted()
    );
}

/// Backpressure: a tiny queue forces submissions to stall while the driver
/// catches up — the program still completes and retires everything.
#[test]
fn backpressure_bounds_the_queue() {
    let mut rt = Runtime::new(
        RuntimeConfig::new(EngineKind::PaintNaive)
            .nodes(2)
            .pipeline(true)
            .pipeline_depth(2),
    );
    let (root, field, regions) = setup_regions(&mut rt);
    const COUNT: usize = 400;
    for i in 0..COUNT {
        // Every launch read-writes the full root: the serial history scan
        // grows quadratically, so the driver falls behind a tight
        // submission loop and the 2-deep queue must fill.
        let spec = LaunchSpec::new(
            format!("t{i}"),
            0,
            vec![RegionRequirement::read_write(root, field)],
            0,
            None,
        );
        rt.submit(spec).unwrap();
    }
    rt.flush();
    let m = rt.pipeline_metrics().unwrap();
    assert_eq!(m.submitted(), COUNT as u64);
    assert_eq!(m.retired(), COUNT as u64);
    assert!(
        m.stalls() > 0,
        "a 2-deep queue under {COUNT} serial-scan launches never stalled"
    );
    assert_eq!(rt.num_tasks(), COUNT);
    let _ = (field, regions);
}

/// Typed submission errors: rejected on the application thread, consuming
/// no task id, leaving the pipeline healthy.
#[test]
fn submission_errors_consume_no_ids() {
    let mut rt = build_runtime(EngineKind::RayCast, false, 1, true);
    let (root, field, regions) = setup_regions(&mut rt);
    let bogus = viz_region::RegionId(9999);
    let err = rt
        .submit(LaunchSpec::new(
            "bad",
            0,
            vec![RegionRequirement::read(bogus, field)],
            0,
            None,
        ))
        .unwrap_err();
    assert!(matches!(err, RuntimeError::UnknownRegion { .. }));
    let err = rt
        .submit(LaunchSpec::new(
            "bad",
            0,
            vec![RegionRequirement::read(root, viz_region::FieldId(9999))],
            0,
            None,
        ))
        .unwrap_err();
    assert!(matches!(err, RuntimeError::UnknownField { .. }));
    let err = rt
        .submit(LaunchSpec::new(
            "bad",
            0,
            vec![
                RegionRequirement::read_write(root, field),
                RegionRequirement::read(root, field),
            ],
            0,
            None,
        ))
        .unwrap_err();
    assert!(matches!(err, RuntimeError::InterferingRequirements { .. }));
    assert!(err.to_string().contains("alias with interfering"));
    // The failed submissions consumed no ids: the next valid launch is
    // task 0, and the queue still drains cleanly.
    let l = AbsLaunch {
        target: 0,
        privilege: 1,
        salt: 2,
    };
    let h = rt.submit(spec_of(&l, 0, &regions, field)).unwrap();
    assert_eq!(rt.resolve(h), TaskId(0));
    assert_eq!(rt.num_tasks(), 1);
}

/// Trace misnesting is reported as a typed error under the pipeline, with
/// the open trace left intact.
#[test]
fn trace_misnesting_errors_pipelined() {
    let mut rt = build_runtime(EngineKind::Warnock, false, 1, true);
    let (_root, field, regions) = setup_regions(&mut rt);
    assert!(matches!(
        rt.try_end_trace(1),
        Err(RuntimeError::EndWithoutBegin { .. })
    ));
    rt.try_begin_trace(1).unwrap();
    let l = AbsLaunch {
        target: 0,
        privilege: 1,
        salt: 4,
    };
    rt.submit(spec_of(&l, 0, &regions, field)).unwrap();
    assert!(matches!(
        rt.try_begin_trace(2),
        Err(RuntimeError::NestedTrace { .. })
    ));
    assert!(matches!(
        rt.try_end_trace(2),
        Err(RuntimeError::MismatchedTraceEnd { .. })
    ));
    assert!(rt.try_end_trace(1).unwrap().is_none());
}

/// Satellite 1 (PR 7): a driver panic mid-batch must not silently lose
/// dequeued-but-unretired specs. The panic is latched, later submissions
/// fail with [`RuntimeError::DriverPanicked`] carrying the exact count of
/// queued launches that will never be analyzed, and dropping the runtime
/// re-raises the original panic payload.
#[test]
fn driver_panic_surfaces_lost_launches_and_rethrows() {
    let mut rt = Runtime::new(
        RuntimeConfig::new(EngineKind::RayCast)
            .nodes(2)
            .pipeline(true)
            // Let a poison spec reach the driver thread: producer-side
            // validation would otherwise reject it before enqueue.
            .validate(false),
    );
    let (root, field, _regions) = setup_regions(&mut rt);
    let metrics = rt.pipeline_metrics().unwrap();
    let ok = |i: usize| {
        LaunchSpec::new(
            format!("ok{i}"),
            0,
            vec![RegionRequirement::read_write(root, field)],
            0,
            None,
        )
    };
    let poison = LaunchSpec::new(
        "poison",
        0,
        vec![RegionRequirement::read(viz_region::RegionId(9999), field)],
        0,
        None,
    );
    // The poison rides last: all three pushes land before the driver can
    // possibly panic, so `submitted` is exactly 3.
    rt.submit_batch(vec![ok(0), ok(1), poison]).unwrap();
    let start = std::time::Instant::now();
    while !metrics.panicked() {
        assert!(
            start.elapsed() < std::time::Duration::from_secs(30),
            "driver never panicked on the poison spec"
        );
        std::thread::yield_now();
    }
    assert_eq!(metrics.submitted(), 3);
    let lost = metrics.lost();
    assert!(
        (1..=3).contains(&lost),
        "the poison spec itself can never retire (lost = {lost})"
    );
    assert_eq!(lost, metrics.submitted() - metrics.retired());
    // Subsequent submissions are refused with the loss count attached.
    let err = rt.submit(ok(2)).expect_err("post-panic submissions fail");
    match &err {
        RuntimeError::DriverPanicked { lost: l } => assert_eq!(*l, lost),
        e => panic!("expected DriverPanicked, got {e}"),
    }
    assert!(err.to_string().contains("unanalyzed"));
    // Dropping the runtime propagates the driver's panic payload.
    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || drop(rt)));
    assert!(unwound.is_err(), "drop must propagate the driver panic");
    // The metrics handle outlives the runtime and still reports the loss.
    assert!(metrics.panicked());
    assert_eq!(metrics.lost(), lost);
}

/// Handles resolve to program-order ids across every submission spelling
/// (submit, submit_batch, builder, fence, inline_read).
#[test]
fn handles_are_program_ordered_across_spellings() {
    let mut rt = build_runtime(EngineKind::Paint, false, 4, true);
    let (root, field, regions) = setup_regions(&mut rt);
    let l = AbsLaunch {
        target: 0,
        privilege: 1,
        salt: 1,
    };
    let h0 = rt.submit(spec_of(&l, 0, &regions, field)).unwrap();
    let batch: Vec<LaunchSpec> = (1..4)
        .map(|i| {
            let l = AbsLaunch {
                target: i % PIECES,
                privilege: 2,
                salt: 9,
            };
            spec_of(&l, i, &regions, field)
        })
        .collect();
    let hs = rt.submit_batch(batch).unwrap();
    let hb = rt
        .task("built")
        .on(1)
        .read(regions[0], field)
        .duration_ns(10)
        .submit()
        .unwrap();
    let f = rt.fence();
    let probe = rt.inline_read(root, field).unwrap();
    assert_eq!(h0.id(), TaskId(0));
    assert_eq!(
        hs.iter().map(|h| h.id()).collect::<Vec<_>>(),
        vec![TaskId(1), TaskId(2), TaskId(3)]
    );
    assert_eq!(hb.id(), TaskId(4));
    assert_eq!(f, TaskId(5));
    assert_eq!(probe, TaskId(6));
    assert_eq!(rt.resolve(hb), TaskId(4));
    assert_eq!(rt.num_tasks(), 7);
    assert_eq!(rt.launches().as_ref().len(), 7);
}
