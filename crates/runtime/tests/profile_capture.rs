//! The recorder under real load: the parallel value executor's worker
//! threads, the analysis engines, and the simulated machine all record into
//! per-thread rings, and one `take()` collects everything.

use std::sync::Arc;
use viz_profile::{EventKind, Track};
use viz_runtime::{
    EngineKind, LaunchSpec, PhysicalRegion, RegionRequirement, Runtime, RuntimeConfig,
};

/// One end-to-end run: analyze on 4 simulated nodes, execute values on the
/// worker pool, replay the timed schedule. A single test (the recorder's
/// state is process-global).
#[test]
fn recorder_collects_across_executor_threads_and_sim_tracks() {
    viz_profile::enable();
    viz_profile::clear();

    let mut rt = Runtime::new(RuntimeConfig::new(EngineKind::RayCast).nodes(4));
    let root = rt.forest_mut().create_root_1d("A", 64);
    let f = rt.forest_mut().add_field(root, "v");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", 8);
    let mut launched = 0u64;
    for _iter in 0..4 {
        for i in 0..8usize {
            let piece = rt.forest().subregion(p, i);
            rt.submit(LaunchSpec::new(
                "w",
                i % 4,
                vec![RegionRequirement::read_write(piece, f)],
                1_000,
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|pt, old| old + pt.x as f64);
                })),
            ))
            .unwrap()
            .id();
            launched += 1;
        }
        rt.submit(LaunchSpec::new(
            "sync",
            0,
            vec![RegionRequirement::read(root, f)],
            1_000,
            None,
        ))
        .unwrap()
        .id();
        launched += 1;
    }
    let _store = rt.execute_values();
    let report = rt.timed_schedule();
    assert!(report.makespan > 0);

    let profile = viz_profile::take();
    assert_eq!(profile.dropped, 0, "default ring holds this workload");

    // Every launch's analysis appears twice: a host span named after the
    // engine and a LaunchAnalyzed event on its origin node's program track.
    let host_spans = profile
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Span { name: "raycast" }))
        .count() as u64;
    assert_eq!(host_spans, launched);
    let analyzed = profile
        .events
        .iter()
        .filter(|e| {
            matches!(e.kind, EventKind::LaunchAnalyzed { .. })
                && matches!(e.track, Track::SimProgram { .. })
        })
        .count() as u64;
    assert_eq!(analyzed, launched);

    // Worker threads each recorded their task spans into their own ring;
    // take() must see all of them, from however many threads ran.
    let task_spans: Vec<_> = profile
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Span { name: "task" }))
        .collect();
    assert_eq!(task_spans.len() as u64, launched);

    // Sharded analysis across 4 nodes exercises the message layer: sends on
    // program tracks, in-order service on service tracks.
    let sends = profile
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::MsgSend { .. }))
        .count();
    let serves = profile
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::MsgServe { .. }))
        .count();
    assert!(sends > 0, "4-node analysis must message remote shards");
    assert_eq!(sends, serves, "every send is served exactly once");
    assert!(profile
        .events
        .iter()
        .any(|e| matches!(e.track, Track::SimService { .. })));

    // The timed schedule populated each node's GPU track.
    let gpu = profile
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::GpuTask { .. }))
        .count() as u64;
    assert_eq!(gpu, launched);

    // Disabled again: nothing further is recorded.
    viz_profile::disable();
    let _s = viz_profile::span("after-disable");
    viz_profile::instant(EventKind::HistoryScan { entries: 1 });
    assert!(viz_profile::take().events.is_empty());
}
