//! Differential property test for the production engines.
//!
//! Random programs — a region tree with a disjoint primary partition and an
//! aliased ghost partition, and a random stream of task launches with mixed
//! privileges — run through all four engines (naive painter, optimized
//! painter, Warnock, ray casting) at several machine scales with and
//! without DCR. For every configuration:
//!
//! 1. the parallel value execution must equal the sequential reference;
//! 2. the dependence DAG must order every interfering pair (transitively);
//! 3. all engines must agree with each other.

use proptest::prelude::*;
use std::sync::Arc;
use viz_geometry::{IndexSpace, Point, Rect};
use viz_region::{Privilege, RedOpRegistry};
use viz_runtime::validate::check_sufficiency;
use viz_runtime::{
    EngineKind, LaunchSpec, PhysicalRegion, RegionRequirement, Runtime, RuntimeConfig,
};

const N: i64 = 48;
const PIECES: usize = 4;

#[derive(Clone, Debug)]
enum Target {
    /// Primary piece i.
    Primary(usize),
    /// Ghost piece i (halo around primary piece i).
    Ghost(usize),
    /// A random span.
    Span(i64, i64),
    Root,
}

#[derive(Clone, Debug)]
struct AbsLaunch {
    target: Target,
    privilege: u8, // 0 = read, 1 = rw, 2 = reduce+, 3 = reduce-min
    salt: u32,
}

fn abs_launch() -> impl Strategy<Value = AbsLaunch> {
    (
        prop_oneof![
            3 => (0..PIECES).prop_map(Target::Primary),
            3 => (0..PIECES).prop_map(Target::Ghost),
            1 => (0..N, 1..N / 3).prop_map(|(lo, len)| Target::Span(lo, (lo + len - 1).min(N - 1))),
            1 => Just(Target::Root),
        ],
        0u8..4,
        0u32..1000,
    )
        .prop_map(|(target, privilege, salt)| AbsLaunch {
            target,
            privilege,
            salt,
        })
}

/// Run one program under one engine configuration; return the final values
/// of the root region.
fn run_config(
    engine: EngineKind,
    nodes: usize,
    dcr: bool,
    launches: &[AbsLaunch],
) -> (Vec<f64>, usize) {
    let mut rt = Runtime::new(RuntimeConfig::new(engine).nodes(nodes).dcr(dcr));
    let root = rt.forest_mut().create_root_1d("A", N);
    let field = rt.forest_mut().add_field(root, "v");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", PIECES);
    // Ghost partition: one-cell halo around each primary piece (aliased,
    // incomplete — the Fig 2 shape).
    let chunk = N / PIECES as i64;
    let ghosts: Vec<IndexSpace> = (0..PIECES as i64)
        .map(|i| {
            let lo = i * chunk;
            let hi = (i + 1) * chunk - 1;
            let mut rects = Vec::new();
            if lo > 0 {
                rects.push(Rect::span(lo - 2, lo - 1));
            }
            if hi < N - 1 {
                rects.push(Rect::span(hi + 1, (hi + 2).min(N - 1)));
            }
            IndexSpace::from_rects(rects)
        })
        .collect();
    let g = rt.forest_mut().create_partition(root, "G", ghosts);
    rt.try_set_initial(root, field, |pt| (pt.x % 17) as f64)
        .unwrap();

    for (i, l) in launches.iter().enumerate() {
        let region = match l.target {
            Target::Primary(k) => rt.forest().subregion(p, k),
            Target::Ghost(k) => rt.forest().subregion(g, k),
            Target::Span(lo, hi) => {
                // Create a fresh subregion of the root for this span: a
                // one-off partition (content-based coherence doesn't care).
                let space = IndexSpace::span(lo, hi);
                let part = rt.forest_mut().create_partition_with_flags(
                    root,
                    format!("S{i}"),
                    vec![space],
                    true,
                    false,
                );
                rt.forest().subregion(part, 0)
            }
            Target::Root => root,
        };
        let salt = l.salt as f64 + i as f64;
        let (privilege, body): (Privilege, viz_runtime::TaskBody) = match l.privilege {
            0 => (Privilege::Read, Arc::new(|_: &mut [PhysicalRegion]| {})),
            1 => (
                Privilege::ReadWrite,
                Arc::new(move |rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|pt, v| ((v * 3.0 + salt + pt.x as f64) as i64 % 257) as f64);
                }),
            ),
            2 => (
                Privilege::Reduce(RedOpRegistry::SUM),
                Arc::new(move |rs: &mut [PhysicalRegion]| {
                    let dom = rs[0].domain().clone();
                    for pt in dom.points() {
                        rs[0].reduce(pt, ((salt as i64 + pt.x) % 13) as f64);
                    }
                }),
            ),
            _ => (
                Privilege::Reduce(RedOpRegistry::MIN),
                Arc::new(move |rs: &mut [PhysicalRegion]| {
                    let dom = rs[0].domain().clone();
                    for pt in dom.points() {
                        rs[0].reduce(pt, ((salt as i64 * 7 + pt.x) % 300) as f64);
                    }
                }),
            ),
        };
        let node = i % nodes;
        rt.submit(LaunchSpec::new(
            format!("t{i}"),
            node,
            vec![RegionRequirement::new(region, field, privilege)],
            100,
            Some(body),
        ))
        .unwrap()
        .id();
    }

    let probe = rt.inline_read(root, field).unwrap();
    // Soundness: every interfering pair must be ordered.
    let violations = check_sufficiency(rt.forest(), rt.launches(), rt.dag());
    assert!(
        violations.is_empty(),
        "{engine:?} nodes={nodes} dcr={dcr}: unsound DAG: {violations:?}"
    );
    let edges = rt.dag().edge_count();
    let store = rt.execute_values();
    let vals: Vec<f64> = (0..N)
        .map(|x| store.inline(probe).get(Point::p1(x)))
        .collect();
    (vals, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_match_each_other_and_are_sound(
        launches in prop::collection::vec(abs_launch(), 1..16)
    ) {
        let (reference, _) = run_config(EngineKind::PaintNaive, 1, false, &launches);
        for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
            for (nodes, dcr) in [(1, false), (4, false), (4, true)] {
                let (vals, _) = run_config(engine, nodes, dcr, &launches);
                prop_assert_eq!(
                    &vals, &reference,
                    "{:?} nodes={} dcr={} diverged", engine, nodes, dcr
                );
            }
        }
    }
}

/// A long alternating Fig 1-style loop as a deterministic heavy case.
#[test]
fn paper_loop_all_engines_agree() {
    let mut launches = Vec::new();
    for iter in 0..6u32 {
        for k in 0..PIECES {
            launches.push(AbsLaunch {
                target: Target::Primary(k),
                privilege: 1,
                salt: iter * 10,
            });
        }
        for k in 0..PIECES {
            launches.push(AbsLaunch {
                target: Target::Ghost(k),
                privilege: 2,
                salt: iter * 10 + 5,
            });
        }
    }
    let (reference, _) = run_config(EngineKind::PaintNaive, 1, false, &launches);
    for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
        for (nodes, dcr) in [(1, false), (2, false), (4, true), (8, true)] {
            let (vals, _) = run_config(engine, nodes, dcr, &launches);
            assert_eq!(vals, reference, "{engine:?} nodes={nodes} dcr={dcr}");
        }
    }
}

/// The engines must not serialize the embarrassingly parallel case: pieces
/// written repeatedly through a disjoint partition depend only on
/// themselves.
#[test]
fn disjoint_writes_stay_parallel_in_every_engine() {
    let launches: Vec<AbsLaunch> = (0..3)
        .flat_map(|iter| {
            (0..PIECES).map(move |k| AbsLaunch {
                target: Target::Primary(k),
                privilege: 1,
                salt: iter,
            })
        })
        .collect();
    for engine in EngineKind::all() {
        let (_, edges) = run_config(engine, 1, false, &launches);
        // Each piece's writer depends only on that piece's previous writer
        // (2 iterations × PIECES edges), plus the final probe read's edge
        // to each piece's last writer.
        assert_eq!(
            edges,
            3 * PIECES,
            "{engine:?} over-serialized disjoint writes"
        );
    }
}
