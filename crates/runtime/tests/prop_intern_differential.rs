//! Differential property test for the interned-algebra layer (`VIZ_INTERN`).
//!
//! The interner, the algebra cache, and the structural fast paths are pure
//! memoization: with them on or off, every engine must produce *identical*
//! analysis — the same dependences, the same materialization plans (compared
//! structurally, rect list by rect list), and the same executed values —
//! across serial and sharded drivers and with automatic trace replay on.
//! The configurations are pinned through [`RuntimeConfig::intern`] rather
//! than the environment so both modes run in one process.

use proptest::prelude::*;
use std::sync::Arc;
use viz_geometry::{IndexSpace, InternConfig, Point, Rect};
use viz_region::{Privilege, RedOpRegistry};
use viz_runtime::plan::AnalysisResult;
use viz_runtime::{
    EngineKind, LaunchSpec, PhysicalRegion, RegionRequirement, Runtime, RuntimeConfig,
};

const N: i64 = 48;
const PIECES: usize = 4;

#[derive(Clone, Debug)]
enum Target {
    Primary(usize),
    Ghost(usize),
    Span(i64, i64),
    Root,
}

#[derive(Clone, Debug)]
struct AbsLaunch {
    target: Target,
    privilege: u8, // 0 = read, 1 = rw, 2 = reduce+, 3 = reduce-min
    salt: u32,
}

fn abs_launch() -> impl Strategy<Value = AbsLaunch> {
    (
        prop_oneof![
            3 => (0..PIECES).prop_map(Target::Primary),
            3 => (0..PIECES).prop_map(Target::Ghost),
            1 => (0..N, 1..N / 3).prop_map(|(lo, len)| Target::Span(lo, (lo + len - 1).min(N - 1))),
            1 => Just(Target::Root),
        ],
        0u8..4,
        0u32..1000,
    )
        .prop_map(|(target, privilege, salt)| AbsLaunch {
            target,
            privilege,
            salt,
        })
}

/// Run one program under one configuration; return the per-launch analysis
/// results (deps + plans, structural) and the final values of the root.
fn run_config(
    engine: EngineKind,
    threads: usize,
    auto_trace: bool,
    intern: InternConfig,
    launches: &[AbsLaunch],
) -> (Vec<AnalysisResult>, Vec<f64>) {
    let mut rt = Runtime::new(
        RuntimeConfig::new(engine)
            .nodes(2)
            .analysis_threads(threads)
            .auto_trace(auto_trace)
            .intern(intern),
    );
    let root = rt.forest_mut().create_root_1d("A", N);
    let field = rt.forest_mut().add_field(root, "v");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", PIECES);
    let chunk = N / PIECES as i64;
    let ghosts: Vec<IndexSpace> = (0..PIECES as i64)
        .map(|i| {
            let lo = i * chunk;
            let hi = (i + 1) * chunk - 1;
            let mut rects = Vec::new();
            if lo > 0 {
                rects.push(Rect::span(lo - 2, lo - 1));
            }
            if hi < N - 1 {
                rects.push(Rect::span(hi + 1, (hi + 2).min(N - 1)));
            }
            IndexSpace::from_rects(rects)
        })
        .collect();
    let g = rt.forest_mut().create_partition(root, "G", ghosts);
    rt.try_set_initial(root, field, |pt| (pt.x % 17) as f64)
        .unwrap();

    for (i, l) in launches.iter().enumerate() {
        let region = match l.target {
            Target::Primary(k) => rt.forest().subregion(p, k),
            Target::Ghost(k) => rt.forest().subregion(g, k),
            Target::Span(lo, hi) => {
                let space = IndexSpace::span(lo, hi);
                let part = rt.forest_mut().create_partition_with_flags(
                    root,
                    format!("S{i}"),
                    vec![space],
                    true,
                    false,
                );
                rt.forest().subregion(part, 0)
            }
            Target::Root => root,
        };
        let salt = l.salt as f64 + i as f64;
        let (privilege, body): (Privilege, viz_runtime::TaskBody) = match l.privilege {
            0 => (Privilege::Read, Arc::new(|_: &mut [PhysicalRegion]| {})),
            1 => (
                Privilege::ReadWrite,
                Arc::new(move |rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|pt, v| ((v * 3.0 + salt + pt.x as f64) as i64 % 257) as f64);
                }),
            ),
            2 => (
                Privilege::Reduce(RedOpRegistry::SUM),
                Arc::new(move |rs: &mut [PhysicalRegion]| {
                    let dom = rs[0].domain().clone();
                    for pt in dom.points() {
                        rs[0].reduce(pt, ((salt as i64 + pt.x) % 13) as f64);
                    }
                }),
            ),
            _ => (
                Privilege::Reduce(RedOpRegistry::MIN),
                Arc::new(move |rs: &mut [PhysicalRegion]| {
                    let dom = rs[0].domain().clone();
                    for pt in dom.points() {
                        rs[0].reduce(pt, ((salt as i64 * 7 + pt.x) % 300) as f64);
                    }
                }),
            ),
        };
        rt.submit(LaunchSpec::new(
            format!("t{i}"),
            i % 2,
            vec![RegionRequirement::new(region, field, privilege)],
            100,
            Some(body),
        ))
        .unwrap()
        .id();
    }

    let probe = rt.inline_read(root, field).unwrap();
    let results = rt.results();
    let store = rt.execute_values();
    let vals: Vec<f64> = (0..N)
        .map(|x| store.inline(probe).get(Point::p1(x)))
        .collect();
    (results, vals)
}

fn assert_intern_invariant(
    launches: &[AbsLaunch],
    engines: &[EngineKind],
    configs: &[(usize, bool)],
) {
    for &engine in engines {
        for &(threads, auto_trace) in configs {
            let (res_on, vals_on) = run_config(
                engine,
                threads,
                auto_trace,
                InternConfig::default(),
                launches,
            );
            let (res_off, vals_off) = run_config(
                engine,
                threads,
                auto_trace,
                InternConfig::disabled(),
                launches,
            );
            assert_eq!(
                res_on, res_off,
                "{engine:?} threads={threads} auto_trace={auto_trace}: \
                 interning changed deps/plans"
            );
            assert_eq!(
                vals_on, vals_off,
                "{engine:?} threads={threads} auto_trace={auto_trace}: \
                 interning changed executed values"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random programs: interning on ≡ off for every engine, serial and
    /// sharded drivers.
    #[test]
    fn interning_is_invisible_to_analysis(
        launches in prop::collection::vec(abs_launch(), 1..14)
    ) {
        assert_intern_invariant(
            &launches,
            &EngineKind::all(),
            &[(1, false), (4, false)],
        );
    }
}

/// A long alternating Fig 1-style loop: deterministic heavy case covering
/// auto-trace replay (the trace templates must also be byte-identical) and
/// a tiny cache (eviction churn) against the same reference.
#[test]
fn paper_loop_interning_invariant_with_auto_trace() {
    let mut launches = Vec::new();
    for iter in 0..6u32 {
        for k in 0..PIECES {
            launches.push(AbsLaunch {
                target: Target::Primary(k),
                privilege: 1,
                salt: iter * 10,
            });
        }
        for k in 0..PIECES {
            launches.push(AbsLaunch {
                target: Target::Ghost(k),
                privilege: 2,
                salt: iter * 10 + 5,
            });
        }
    }
    assert_intern_invariant(&launches, &EngineKind::all(), &[(1, true), (4, true)]);
    // Eviction churn must be just as invisible as a roomy cache.
    let (res_tiny, vals_tiny) = run_config(
        EngineKind::RayCast,
        1,
        false,
        InternConfig {
            enabled: true,
            cache_cap: 2,
        },
        &launches,
    );
    let (res_off, vals_off) = run_config(
        EngineKind::RayCast,
        1,
        false,
        InternConfig::disabled(),
        &launches,
    );
    assert_eq!(res_tiny, res_off, "cap=2 eviction changed deps/plans");
    assert_eq!(vals_tiny, vals_off, "cap=2 eviction changed values");
}
