//! Differential property test with *multi-requirement* tasks — the Fig 1
//! shape, where one task holds a write privilege on one region and a
//! reduction privilege on another (possibly on different fields), plus
//! cross-field and cross-tree traffic.

use proptest::prelude::*;
use std::sync::Arc;
use viz_geometry::{IndexSpace, Rect};
use viz_region::RedOpRegistry;
use viz_runtime::validate::check_sufficiency;
use viz_runtime::{
    EngineKind, LaunchSpec, PhysicalRegion, RegionRequirement, Runtime, RuntimeConfig,
};

const N: i64 = 36;
const PIECES: usize = 3;

/// An abstract Fig 1-style launch: a piece write on one field plus a ghost
/// reduction on the other, with randomized piece/ghost selection.
#[derive(Clone, Debug)]
struct AbsLaunch {
    piece: usize,
    ghost: usize,
    /// Which field gets the write (the other gets the reduction).
    flip: bool,
    salt: u32,
}

fn abs_launch() -> impl Strategy<Value = AbsLaunch> {
    (0..PIECES, 0..PIECES, any::<bool>(), 0u32..100).prop_map(|(piece, ghost, flip, salt)| {
        AbsLaunch {
            piece,
            ghost,
            flip,
            salt,
        }
    })
}

fn run_config(engine: EngineKind, nodes: usize, dcr: bool, launches: &[AbsLaunch]) -> Vec<f64> {
    let mut rt = Runtime::new(RuntimeConfig::new(engine).nodes(nodes).dcr(dcr));
    let root = rt.forest_mut().create_root_1d("N", N);
    let up = rt.forest_mut().add_field(root, "up");
    let down = rt.forest_mut().add_field(root, "down");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", PIECES);
    // Ghost pieces: a sparse scattering into the *other* pieces.
    let ghosts: Vec<IndexSpace> = (0..PIECES as i64)
        .map(|i| {
            let mut rects = Vec::new();
            let chunk = N / PIECES as i64;
            for other in 0..PIECES as i64 {
                if other != i {
                    let base = other * chunk;
                    rects.push(Rect::span(base + 1, base + 2));
                    rects.push(Rect::span(base + 5, base + 5));
                }
            }
            IndexSpace::from_rects(rects)
        })
        .collect();
    let g = rt.forest_mut().create_partition(root, "G", ghosts);
    rt.try_set_initial(root, up, |pt| pt.x as f64).unwrap();
    rt.try_set_initial(root, down, |pt| (pt.x * 2) as f64)
        .unwrap();

    for (i, l) in launches.iter().enumerate() {
        let piece = rt.forest().subregion(p, l.piece);
        let ghost = rt.forest().subregion(g, l.ghost);
        let (wf, rf) = if l.flip { (down, up) } else { (up, down) };
        let salt = l.salt as f64 + i as f64;
        rt.submit(LaunchSpec::new(
            format!("t{i}"),
            i % nodes,
            vec![
                RegionRequirement::read_write(piece, wf),
                RegionRequirement::reduce(ghost, rf, RedOpRegistry::SUM),
            ],
            10,
            Some(Arc::new(move |rs: &mut [PhysicalRegion]| {
                rs[0].update_all(|pt, v| ((v * 3.0 + salt + pt.x as f64) as i64 % 509) as f64);
                let dom = rs[1].domain().clone();
                for pt in dom.points() {
                    rs[1].reduce(pt, ((salt as i64 + pt.x) % 11) as f64);
                }
            })),
        ))
        .unwrap()
        .id();
    }
    let probe_up = rt.inline_read(root, up).unwrap();
    let probe_down = rt.inline_read(root, down).unwrap();
    let violations = check_sufficiency(rt.forest(), rt.launches(), rt.dag());
    assert!(
        violations.is_empty(),
        "{engine:?} nodes={nodes} dcr={dcr}: {violations:?}"
    );
    let store = rt.execute_values();
    let mut out: Vec<f64> = store.inline(probe_up).iter().map(|(_, v)| v).collect();
    out.extend(store.inline(probe_down).iter().map(|(_, v)| v));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn multi_requirement_tasks_agree_across_engines(
        launches in prop::collection::vec(abs_launch(), 1..12)
    ) {
        let reference = run_config(EngineKind::PaintNaive, 1, false, &launches);
        for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
            for (nodes, dcr) in [(1, false), (3, true)] {
                let got = run_config(engine, nodes, dcr, &launches);
                prop_assert_eq!(&got, &reference,
                    "{:?} nodes={} dcr={}", engine, nodes, dcr);
            }
        }
    }
}

/// The exact Fig 1 alternation as a deterministic case, three loop turns.
#[test]
fn fig1_alternation_multi_req() {
    let mut launches = Vec::new();
    for turn in 0..3u32 {
        for i in 0..PIECES {
            launches.push(AbsLaunch {
                piece: i,
                ghost: i,
                flip: false,
                salt: turn,
            });
        }
        for i in 0..PIECES {
            launches.push(AbsLaunch {
                piece: i,
                ghost: i,
                flip: true,
                salt: turn + 50,
            });
        }
    }
    let reference = run_config(EngineKind::PaintNaive, 1, false, &launches);
    for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
        let got = run_config(engine, 3, true, &launches);
        assert_eq!(got, reference, "{engine:?}");
    }
}
