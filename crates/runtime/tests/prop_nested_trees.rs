//! Differential property test over randomly *nested* region trees: tasks
//! name regions at arbitrary depths (root, pieces, sub-pieces, a sparse
//! partition of one sub-piece), which stresses the painter's path
//! histories, Warnock's refinement cascades, and ray casting's anchor
//! selection through multi-level trees.

use proptest::prelude::*;
use std::sync::Arc;
use viz_geometry::{IndexSpace, Point};
use viz_region::RegionId;
use viz_runtime::validate::check_sufficiency;
use viz_runtime::{
    EngineKind, LaunchSpec, PhysicalRegion, RegionRequirement, Runtime, RuntimeConfig,
};

const N: i64 = 64;

/// Region selector over a fixed nested tree:
/// root → P (4 pieces) → Q on P[0] (2 sub-pieces) → sparse evens of Q[1].
#[derive(Clone, Debug)]
enum Target {
    Root,
    P(usize),
    Q(usize),
    SparseEvens,
}

#[derive(Clone, Debug)]
struct AbsLaunch {
    target: Target,
    write: bool,
    salt: u32,
}

fn abs_launch() -> impl Strategy<Value = AbsLaunch> {
    (
        prop_oneof![
            1 => Just(Target::Root),
            4 => (0..4usize).prop_map(Target::P),
            3 => (0..2usize).prop_map(Target::Q),
            2 => Just(Target::SparseEvens),
        ],
        any::<bool>(),
        0u32..64,
    )
        .prop_map(|(target, write, salt)| AbsLaunch {
            target,
            write,
            salt,
        })
}

struct Tree {
    root: RegionId,
    p: Vec<RegionId>,
    q: Vec<RegionId>,
    sparse: RegionId,
    f: viz_region::FieldId,
}

fn build(rt: &mut Runtime) -> Tree {
    let root = rt.forest_mut().create_root_1d("A", N);
    let f = rt.forest_mut().add_field(root, "v");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", 4);
    let p0 = rt.forest().subregion(p, 0);
    let q = rt.forest_mut().create_equal_partition_1d(p0, "Q", 2);
    let q1 = rt.forest().subregion(q, 1); // elements [8, 15]
    let sparse_part = rt.forest_mut().create_partition_with_flags(
        q1,
        "evens",
        vec![IndexSpace::from_points((4..8).map(|i| Point::p1(i * 2)))],
        true,
        false,
    );
    Tree {
        root,
        p: (0..4).map(|i| rt.forest().subregion(p, i)).collect(),
        q: (0..2).map(|i| rt.forest().subregion(q, i)).collect(),
        sparse: rt.forest().subregion(sparse_part, 0),
        f,
    }
}

fn run_config(engine: EngineKind, nodes: usize, dcr: bool, launches: &[AbsLaunch]) -> Vec<f64> {
    let mut rt = Runtime::new(RuntimeConfig::new(engine).nodes(nodes).dcr(dcr));
    let tree = build(&mut rt);
    rt.try_set_initial(tree.root, tree.f, |pt| pt.x as f64)
        .unwrap();
    for (i, l) in launches.iter().enumerate() {
        let region = match l.target {
            Target::Root => tree.root,
            Target::P(k) => tree.p[k],
            Target::Q(k) => tree.q[k],
            Target::SparseEvens => tree.sparse,
        };
        let salt = l.salt as f64 + i as f64;
        let (req, body): (RegionRequirement, viz_runtime::TaskBody) = if l.write {
            (
                RegionRequirement::read_write(region, tree.f),
                Arc::new(move |rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|pt, v| ((v + salt + pt.x as f64) as i64 % 251) as f64);
                }),
            )
        } else {
            (
                RegionRequirement::reduce(region, tree.f, viz_region::RedOpRegistry::SUM),
                Arc::new(move |rs: &mut [PhysicalRegion]| {
                    let dom = rs[0].domain().clone();
                    for pt in dom.points() {
                        rs[0].reduce(pt, ((salt as i64 + pt.x) % 7) as f64);
                    }
                }),
            )
        };
        rt.submit(LaunchSpec::new(
            format!("t{i}"),
            i % nodes,
            vec![req],
            10,
            Some(body),
        ))
        .unwrap()
        .id();
    }
    let probe = rt.inline_read(tree.root, tree.f).unwrap();
    let violations = check_sufficiency(rt.forest(), rt.launches(), rt.dag());
    assert!(
        violations.is_empty(),
        "{engine:?} nodes={nodes} dcr={dcr}: {violations:?}"
    );
    rt.execute_values()
        .inline(probe)
        .iter()
        .map(|(_, v)| v)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn nested_trees_agree_across_engines(
        launches in prop::collection::vec(abs_launch(), 1..14)
    ) {
        let reference = run_config(EngineKind::PaintNaive, 1, false, &launches);
        for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
            for (nodes, dcr) in [(1, false), (4, true)] {
                let got = run_config(engine, nodes, dcr, &launches);
                prop_assert_eq!(&got, &reference,
                    "{:?} nodes={} dcr={}", engine, nodes, dcr);
            }
        }
    }
}

/// Writing a grandchild then reading an uncle: the value must route through
/// the deep write — at every depth combination.
#[test]
fn deep_write_shallow_read_routes_correctly() {
    let seq = vec![
        AbsLaunch {
            target: Target::SparseEvens,
            write: true,
            salt: 3,
        },
        AbsLaunch {
            target: Target::Root,
            write: false,
            salt: 5,
        },
        AbsLaunch {
            target: Target::Q(1),
            write: true,
            salt: 9,
        },
        AbsLaunch {
            target: Target::P(0),
            write: false,
            salt: 2,
        },
        AbsLaunch {
            target: Target::Root,
            write: true,
            salt: 7,
        },
        AbsLaunch {
            target: Target::Q(0),
            write: false,
            salt: 1,
        },
    ];
    let reference = run_config(EngineKind::PaintNaive, 1, false, &seq);
    for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
        assert_eq!(run_config(engine, 2, true, &seq), reference, "{engine:?}");
    }
}
