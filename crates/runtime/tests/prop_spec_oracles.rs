//! Property test: the three spec algorithms (Figs 7, 9, 11 verbatim) all
//! compute the same values as direct sequential interpretation, on random
//! programs with random subregions, privileges and reduction operators.
//!
//! Values are kept exactly representable (small integers, min/max) so the
//! comparison is bit-exact regardless of fold association.

use proptest::prelude::*;
use viz_geometry::IndexSpace;
use viz_region::{Privilege, RedOpRegistry};
use viz_runtime::spec::painter::SpecPainter;
use viz_runtime::spec::program::{run_program, SpecProgram, SpecTask};
use viz_runtime::spec::raycast::SpecRayCast;
use viz_runtime::spec::seqref::run_sequential;
use viz_runtime::spec::warnock::SpecWarnock;
use viz_runtime::spec::VRegion;

const N: i64 = 40;

/// An abstract operation we can render as a task body.
#[derive(Clone, Debug)]
enum OpKind {
    Write,
    ReduceSum,
    ReduceMin,
    Read,
}

#[derive(Clone, Debug)]
struct AbsTask {
    kind: OpKind,
    lo: i64,
    len: i64,
    salt: u32,
}

fn abs_task() -> impl Strategy<Value = AbsTask> {
    (
        prop_oneof![
            2 => Just(OpKind::Write),
            2 => Just(OpKind::ReduceSum),
            1 => Just(OpKind::ReduceMin),
            1 => Just(OpKind::Read),
        ],
        0..N,
        1..N / 2,
        0u32..1000,
    )
        .prop_map(|(kind, lo, len, salt)| AbsTask {
            kind,
            lo,
            len,
            salt,
        })
}

fn build_program(tasks: &[AbsTask]) -> SpecProgram {
    let dom = IndexSpace::span(0, N - 1);
    let mut prog = SpecProgram::new(dom.clone(), VRegion::tabulate(&dom, |p| (p.x % 17) as f64));
    for (i, t) in tasks.iter().enumerate() {
        let hi = (t.lo + t.len - 1).min(N - 1);
        let d = IndexSpace::span(t.lo, hi);
        let salt = t.salt as f64 + i as f64;
        type B = Box<dyn Fn(&mut [VRegion]) + Send + Sync>;
        let (privilege, body): (Privilege, B) = match t.kind {
            OpKind::Write => (
                Privilege::ReadWrite,
                Box::new(move |rs: &mut [VRegion]| {
                    let pts: Vec<_> = rs[0].iter().collect();
                    for (p, v) in pts {
                        // Exact small-integer arithmetic.
                        rs[0].set(p, ((v * 3.0 + salt + p.x as f64) as i64 % 257) as f64);
                    }
                }),
            ),
            OpKind::ReduceSum => (
                Privilege::Reduce(RedOpRegistry::SUM),
                Box::new(move |rs: &mut [VRegion]| {
                    let pts: Vec<_> = rs[0].iter().map(|(p, _)| p).collect();
                    for p in pts {
                        let cur = rs[0].get(p).unwrap();
                        rs[0].set(p, cur + ((salt as i64 + p.x) % 13) as f64);
                    }
                }),
            ),
            OpKind::ReduceMin => (
                Privilege::Reduce(RedOpRegistry::MIN),
                Box::new(move |rs: &mut [VRegion]| {
                    let pts: Vec<_> = rs[0].iter().map(|(p, _)| p).collect();
                    for p in pts {
                        let cur = rs[0].get(p).unwrap();
                        let c = ((salt as i64 * 7 + p.x) % 300) as f64;
                        rs[0].set(p, cur.min(c));
                    }
                }),
            ),
            OpKind::Read => (Privilege::Read, Box::new(|_: &mut [VRegion]| {})),
        };
        let mut st = SpecTask::new(format!("t{i}"), vec![(privilege, d)], |_| {});
        st.body = std::sync::Arc::from(body);
        prog.push(st);
    }
    prog
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_three_visibility_algorithms_match_sequential(
        tasks in prop::collection::vec(abs_task(), 1..20)
    ) {
        let redops = RedOpRegistry::new();
        let prog = build_program(&tasks);
        let truth = run_sequential(&prog, &redops);
        let painter = run_program(&mut SpecPainter::new(), &prog, &redops);
        let warnock = run_program(&mut SpecWarnock::new(), &prog, &redops);
        let raycast = run_program(&mut SpecRayCast::new(), &prog, &redops);
        prop_assert_eq!(&painter, &truth, "painter diverged from sequential");
        prop_assert_eq!(&warnock, &truth, "warnock diverged from sequential");
        prop_assert_eq!(&raycast, &truth, "raycast diverged from sequential");
    }

    /// Ray casting must never retain more equivalence sets than Warnock:
    /// dominating writes only prune.
    #[test]
    fn raycast_sets_bounded_by_warnock_sets(
        tasks in prop::collection::vec(abs_task(), 1..20)
    ) {
        let redops = RedOpRegistry::new();
        let prog = build_program(&tasks);
        let mut w = SpecWarnock::new();
        run_program(&mut w, &prog, &redops);
        let mut r = SpecRayCast::new();
        run_program(&mut r, &prog, &redops);
        prop_assert!(r.num_sets() <= w.num_sets(),
            "raycast {} > warnock {}", r.num_sets(), w.num_sets());
    }
}
