//! Differential property test for the batched visibility backend
//! (`VIZ_VIS_BACKEND`).
//!
//! The flattened-snapshot batch sweep is pure memoization of the scalar
//! K-d walk: with either backend, every engine must produce *identical*
//! analysis — the same dependences, the same materialization plans
//! (compared structurally), and the same executed values — across serial
//! and sharded drivers, with automatic trace replay on, and through the
//! pipelined frontend. The backends are pinned through
//! [`RuntimeConfig::visibility_backend`] rather than the environment so
//! both run in one process.
//!
//! The fixture deliberately creates only *aliased, incomplete* partitions:
//! with no disjoint-and-complete partition the raycast engine takes the
//! K-d fallback (§7.1), which is the only path the backend touches. The
//! batch threshold is pinned to 0 so even proptest's small trees exercise
//! the flattened sweep.

use proptest::prelude::*;
use std::sync::Arc;
use viz_geometry::{IndexSpace, Point};
use viz_region::{Privilege, RedOpRegistry};
use viz_runtime::plan::AnalysisResult;
use viz_runtime::{
    EngineKind, LaunchSpec, PhysicalRegion, RegionRequirement, Runtime, RuntimeConfig,
    VisibilityConfig,
};

const N: i64 = 48;
const PIECES: usize = 4;

#[derive(Clone, Debug)]
enum Target {
    /// One piece of the aliased partition (pieces overlap their neighbors).
    Piece(usize),
    Span(i64, i64),
    Root,
}

#[derive(Clone, Debug)]
struct AbsLaunch {
    target: Target,
    privilege: u8, // 0 = read, 1 = rw, 2 = reduce+, 3 = reduce-min
    salt: u32,
}

fn abs_launch() -> impl Strategy<Value = AbsLaunch> {
    (
        prop_oneof![
            4 => (0..PIECES).prop_map(Target::Piece),
            2 => (0..N, 1..N / 3).prop_map(|(lo, len)| Target::Span(lo, (lo + len - 1).min(N - 1))),
            1 => Just(Target::Root),
        ],
        0u8..4,
        0u32..1000,
    )
        .prop_map(|(target, privilege, salt)| AbsLaunch {
            target,
            privilege,
            salt,
        })
}

/// Run one program under one configuration; return the per-launch analysis
/// results (deps + plans, structural) and the final values of the root.
fn run_config(
    engine: EngineKind,
    threads: usize,
    auto_trace: bool,
    pipeline: bool,
    vis: VisibilityConfig,
    launches: &[AbsLaunch],
) -> (Vec<AnalysisResult>, Vec<f64>) {
    let mut rt = Runtime::new(
        RuntimeConfig::new(engine)
            .nodes(2)
            .analysis_threads(threads)
            .auto_trace(auto_trace)
            .pipeline(pipeline)
            .visibility_backend(vis),
    );
    let root = rt.forest_mut().create_root_1d("A", N);
    let field = rt.forest_mut().add_field(root, "v");
    // Aliased, incomplete partition: overlapping pieces, nothing covering
    // the root exactly — no disjoint-and-complete partition exists, so the
    // raycast engine builds the K-d index this PR's backends serve.
    let chunk = N / PIECES as i64;
    let pieces: Vec<IndexSpace> = (0..PIECES as i64)
        .map(|i| {
            let lo = (i * chunk - 3).max(0);
            let hi = ((i + 1) * chunk + 2).min(N - 2);
            IndexSpace::span(lo, hi)
        })
        .collect();
    let g = rt.forest_mut().create_partition(root, "G", pieces);
    rt.try_set_initial(root, field, |pt| (pt.x % 17) as f64)
        .unwrap();

    for (i, l) in launches.iter().enumerate() {
        let region = match l.target {
            Target::Piece(k) => rt.forest().subregion(g, k),
            Target::Span(lo, hi) => {
                let space = IndexSpace::span(lo, hi);
                let part = rt.forest_mut().create_partition_with_flags(
                    root,
                    format!("S{i}"),
                    vec![space],
                    true,
                    false,
                );
                rt.forest().subregion(part, 0)
            }
            Target::Root => root,
        };
        let salt = l.salt as f64 + i as f64;
        let (privilege, body): (Privilege, viz_runtime::TaskBody) = match l.privilege {
            0 => (Privilege::Read, Arc::new(|_: &mut [PhysicalRegion]| {})),
            1 => (
                Privilege::ReadWrite,
                Arc::new(move |rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|pt, v| ((v * 3.0 + salt + pt.x as f64) as i64 % 257) as f64);
                }),
            ),
            2 => (
                Privilege::Reduce(RedOpRegistry::SUM),
                Arc::new(move |rs: &mut [PhysicalRegion]| {
                    let dom = rs[0].domain().clone();
                    for pt in dom.points() {
                        rs[0].reduce(pt, ((salt as i64 + pt.x) % 13) as f64);
                    }
                }),
            ),
            _ => (
                Privilege::Reduce(RedOpRegistry::MIN),
                Arc::new(move |rs: &mut [PhysicalRegion]| {
                    let dom = rs[0].domain().clone();
                    for pt in dom.points() {
                        rs[0].reduce(pt, ((salt as i64 * 7 + pt.x) % 300) as f64);
                    }
                }),
            ),
        };
        rt.submit(LaunchSpec::new(
            format!("t{i}"),
            i % 2,
            vec![RegionRequirement::new(region, field, privilege)],
            100,
            Some(body),
        ))
        .unwrap()
        .id();
    }

    let probe = rt.inline_read(root, field).unwrap();
    let results = rt.results();
    let store = rt.execute_values();
    let vals: Vec<f64> = (0..N)
        .map(|x| store.inline(probe).get(Point::p1(x)))
        .collect();
    (results, vals)
}

/// scalar == batch(min 0) == batch(default threshold) for every listed
/// engine × driver configuration.
fn assert_backend_invariant(
    launches: &[AbsLaunch],
    engines: &[EngineKind],
    configs: &[(usize, bool, bool)],
) {
    for &engine in engines {
        for &(threads, auto_trace, pipeline) in configs {
            let (res_s, vals_s) = run_config(
                engine,
                threads,
                auto_trace,
                pipeline,
                VisibilityConfig::scalar(),
                launches,
            );
            for vis in [
                VisibilityConfig::batch().batch_min(0),
                VisibilityConfig::batch(),
            ] {
                let (res_b, vals_b) =
                    run_config(engine, threads, auto_trace, pipeline, vis, launches);
                assert_eq!(
                    res_s, res_b,
                    "{engine:?} threads={threads} auto_trace={auto_trace} \
                     pipeline={pipeline} {vis:?}: backend changed deps/plans"
                );
                assert_eq!(
                    vals_s, vals_b,
                    "{engine:?} threads={threads} auto_trace={auto_trace} \
                     pipeline={pipeline} {vis:?}: backend changed executed values"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random programs: the batch backend is invisible for every engine,
    /// serial and sharded drivers.
    #[test]
    fn batch_backend_is_invisible_to_analysis(
        launches in prop::collection::vec(abs_launch(), 1..14)
    ) {
        assert_backend_invariant(
            &launches,
            &EngineKind::all(),
            &[(1, false, false), (4, false, false)],
        );
    }
}

/// A long alternating loop: deterministic heavy case covering auto-trace
/// replay (trace templates must be byte-identical too) and the pipelined
/// frontend, where the backward scans run on the driver thread.
#[test]
fn paper_loop_backend_invariant_with_auto_trace_and_pipeline() {
    let mut launches = Vec::new();
    for iter in 0..6u32 {
        for k in 0..PIECES {
            launches.push(AbsLaunch {
                target: Target::Piece(k),
                privilege: 1,
                salt: iter * 10,
            });
        }
        for k in 0..PIECES {
            launches.push(AbsLaunch {
                target: Target::Piece(PIECES - 1 - k),
                privilege: 2,
                salt: iter * 10 + 5,
            });
        }
    }
    assert_backend_invariant(
        &launches,
        &EngineKind::all(),
        &[(1, true, false), (4, true, false), (4, false, true)],
    );
}

/// The deep-churn case: enough refinement splits and dominating writes to
/// force mid-batch snapshot invalidation (epoch bumps between requirements
/// of one launch batch) on a tree well above the default threshold.
#[test]
fn churny_program_above_default_threshold() {
    let mut launches = Vec::new();
    for i in 0..60u32 {
        let lo = (i as i64 * 7) % (N - 6);
        launches.push(AbsLaunch {
            target: Target::Span(lo, lo + 5),
            privilege: (i % 4) as u8,
            salt: i,
        });
    }
    assert_backend_invariant(&launches, &[EngineKind::RayCast], &[(1, false, false)]);
}
