//! Regression: a launch whose *later* requirement refines (splits) an
//! equivalence set that an *earlier* requirement of the same launch already
//! marked for commit must not lose the earlier access. Warnock and RayCast
//! scan all requirements of a launch before committing any of them; the
//! split kills the marked set, and a commit that skipped dead sets dropped
//! the access from history entirely — a later interfering launch then saw
//! no epoch to order against. Found by the viz-oracle fuzzer (deep-trees
//! mode); the fix forwards deferred commits to a split set's replacements.

use viz_geometry::IndexSpace;
use viz_runtime::validate::check_sufficiency;
use viz_runtime::{EngineKind, LaunchSpec, RegionRequirement, Runtime, RuntimeConfig};

#[test]
fn same_launch_refinement_keeps_earlier_commit() {
    for engine in [
        EngineKind::PaintNaive,
        EngineKind::Paint,
        EngineKind::Warnock,
        EngineKind::RayCast,
    ] {
        let mut rt = Runtime::new(RuntimeConfig::new(engine));
        let root = rt.forest_mut().create_root_1d("A", 107);
        let f = rt.forest_mut().add_field(root, "v");
        let p0 = rt.forest_mut().create_partition(
            root,
            "P0",
            vec![IndexSpace::span(0, 52), IndexSpace::span(53, 105)],
        );
        let left = rt.forest().subregion(p0, 0);
        let right = rt.forest().subregion(p0, 1);
        let p2 = rt.forest_mut().create_partition(
            left,
            "P2",
            vec![
                IndexSpace::span(0, 16),
                IndexSpace::span(17, 33),
                IndexSpace::span(34, 50),
            ],
        );
        let p3 = rt.forest_mut().create_partition(
            right,
            "P3",
            vec![
                IndexSpace::span(53, 69),
                IndexSpace::span(70, 86),
                IndexSpace::span(87, 103),
            ],
        );
        let probe = rt.forest().subregion(p3, 1);
        let target = rt.forest().subregion(p2, 2);

        // Req 0 scans the root-level set; req 1 refines it down to `probe`,
        // splitting (and killing) the set req 0 marked.
        let reader = rt
            .submit(LaunchSpec::new(
                "read",
                0,
                vec![
                    RegionRequirement::read(root, f),
                    RegionRequirement::read(probe, f),
                ],
                1_000,
                None,
            ))
            .unwrap()
            .id();
        // Interferes with the root-wide read on a branch the second req
        // never touched: only the (nearly lost) req-0 commit orders it.
        let reducer = rt
            .submit(LaunchSpec::new(
                "reduce",
                1,
                vec![RegionRequirement::reduce(
                    target,
                    f,
                    viz_region::RedOpRegistry::MAX,
                )],
                1_000,
                None,
            ))
            .unwrap()
            .id();
        rt.flush();
        assert_eq!(
            rt.dag().preds(reducer),
            &[reader],
            "{engine:?}: reduce over a sibling branch must order after the \
             root-wide read"
        );
        let viols = check_sufficiency(rt.forest(), rt.launches(), rt.dag());
        assert!(viols.is_empty(), "{engine:?}: {viols:?}");
    }
}
