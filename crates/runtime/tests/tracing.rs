//! Dynamic tracing (\[15\]) tests: replayed iterations must be functionally
//! identical to analyzed ones, engine work must actually disappear during
//! replay, and trace violations must be caught.

// Deprecated-wrapper allowlist (PR 4): still exercises `launch`/`run_batch`/
// `set_initial`/`begin_trace`; migrate to `submit` and the `try_*` forms in PR 5.
#![allow(deprecated)]
use std::sync::Arc;
use viz_region::RedOpRegistry;
use viz_runtime::validate::check_sufficiency;
use viz_runtime::{
    EngineKind, PhysicalRegion, RegionRequirement, Runtime, RuntimeConfig, TraceId, ViolationKind,
};

struct Loop {
    rt: Runtime,
    p: viz_region::PartitionId,
    g: viz_region::PartitionId,
    f: viz_region::FieldId,
    root: viz_region::RegionId,
}

fn setup(engine: EngineKind) -> Loop {
    // Pin auto-tracing off regardless of `VIZ_AUTO_TRACE`: these tests
    // assert exact replay counts for *annotated* traces against untraced
    // control runs (the auto/manual interplay is tested in
    // `autotracing.rs`).
    let mut rt = Runtime::new(RuntimeConfig::new(engine).auto_trace(false));
    let root = rt.forest_mut().create_root_1d("A", 40);
    let f = rt.forest_mut().add_field(root, "v");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", 4);
    let g = rt.forest_mut().create_partition(
        root,
        "G",
        (0..4)
            .map(|i| {
                let lo = (i * 10 - 2).max(0);
                let hi = (i * 10 + 11).min(39);
                viz_geometry::IndexSpace::span(lo, hi)
                    .subtract(&viz_geometry::IndexSpace::span(i * 10, i * 10 + 9))
            })
            .collect(),
    );
    rt.set_initial(root, f, |pt| pt.x as f64);
    Loop { rt, p, g, f, root }
}

/// One loop iteration: piece writes then ghost reductions.
fn iteration(l: &mut Loop) {
    for i in 0..4 {
        let piece = l.rt.forest().subregion(l.p, i);
        l.rt.launch(
            "w",
            0,
            vec![RegionRequirement::read_write(piece, l.f)],
            1_000,
            Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                rs[0].update_all(|_, v| v + 1.0);
            })),
        );
    }
    for i in 0..4 {
        let ghost = l.rt.forest().subregion(l.g, i);
        l.rt.launch(
            "r",
            0,
            vec![RegionRequirement::reduce(ghost, l.f, RedOpRegistry::SUM)],
            1_000,
            Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                let dom = rs[0].domain().clone();
                for pt in dom.points() {
                    rs[0].reduce(pt, 2.0);
                }
            })),
        );
    }
}

fn run_loop(engine: EngineKind, iters: usize, traced: bool) -> (Vec<f64>, u64, usize) {
    let mut l = setup(engine);
    for _ in 0..iters {
        if traced {
            l.rt.begin_trace(1);
        }
        iteration(&mut l);
        if traced {
            l.rt.end_trace(1);
        }
    }
    let probe = l.rt.inline_read(l.root, l.f);
    let violations = check_sufficiency(l.rt.forest(), l.rt.launches(), l.rt.dag());
    assert!(
        violations.is_empty(),
        "{engine:?} traced={traced}: {violations:?}"
    );
    let replayed = l.rt.replayed_launches();
    let edges = l.rt.dag().edge_count();
    let store = l.rt.execute_values();
    let vals = store.inline(probe).iter().map(|(_, v)| v).collect();
    (vals, replayed, edges)
}

#[test]
fn traced_loop_matches_untraced_loop() {
    for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
        let (plain, replayed0, edges0) = run_loop(engine, 6, false);
        let (traced, replayed1, edges1) = run_loop(engine, 6, true);
        assert_eq!(plain, traced, "{engine:?}: replay changed results");
        assert_eq!(replayed0, 0);
        // Instances 3..6 replayed: 4 instances × 8 launches.
        assert_eq!(replayed1, 32, "{engine:?}");
        assert_eq!(edges0, edges1, "{engine:?}: replay changed the DAG");
    }
}

#[test]
fn replay_skips_the_visibility_engine() {
    let mut l = setup(EngineKind::RayCast);
    // Warm-up + capture.
    for _ in 0..2 {
        l.rt.begin_trace(1);
        iteration(&mut l);
        l.rt.end_trace(1);
    }
    let before = l.rt.machine().counters().clone();
    l.rt.begin_trace(1);
    assert!(l.rt.is_replaying(), "third instance must replay");
    iteration(&mut l);
    l.rt.end_trace(1);
    let after = l.rt.machine().counters().clone();
    assert_eq!(after.geom_ops, before.geom_ops, "no geometry during replay");
    assert_eq!(
        after.eqsets_touched, before.eqsets_touched,
        "no equivalence-set work during replay"
    );
    assert_eq!(after.launches, before.launches, "no LaunchOverhead charges");
    assert_eq!(l.rt.replayed_launches(), 8);
}

#[test]
fn interleaved_launches_invalidate_the_template() {
    let mut l = setup(EngineKind::RayCast);
    for _ in 0..3 {
        l.rt.begin_trace(1);
        iteration(&mut l);
        l.rt.end_trace(1);
    }
    assert_eq!(l.rt.replayed_launches(), 8);
    // An untraced launch between instances: the template must be dropped
    // and re-captured, not replayed over changed state.
    let root = l.rt.forest().roots()[0];
    l.rt.launch(
        "intruder",
        0,
        vec![RegionRequirement::read_write(root, l.f)],
        0,
        Some(Arc::new(|rs: &mut [PhysicalRegion]| {
            rs[0].update_all(|_, v| v * 2.0);
        })),
    );
    let replayed_before = l.rt.replayed_launches();
    for _ in 0..3 {
        l.rt.begin_trace(1);
        iteration(&mut l);
        l.rt.end_trace(1);
    }
    // Re-capture costs two instances; only the third replays.
    assert_eq!(l.rt.replayed_launches(), replayed_before + 8);
    let probe = l.rt.inline_read(l.root, l.f);
    assert!(check_sufficiency(l.rt.forest(), l.rt.launches(), l.rt.dag()).is_empty());
    let store = l.rt.execute_values();
    // Cross-check against an untraced run of the same program.
    let mut l2 = setup(EngineKind::RayCast);
    for _ in 0..3 {
        iteration(&mut l2);
    }
    let root2 = l2.rt.forest().roots()[0];
    l2.rt.launch(
        "intruder",
        0,
        vec![RegionRequirement::read_write(root2, l2.f)],
        0,
        Some(Arc::new(|rs: &mut [PhysicalRegion]| {
            rs[0].update_all(|_, v| v * 2.0);
        })),
    );
    for _ in 0..3 {
        iteration(&mut l2);
    }
    let probe2 = l2.rt.inline_read(l2.root, l2.f);
    let store2 = l2.rt.execute_values();
    let a: Vec<f64> = store.inline(probe).iter().map(|(_, v)| v).collect();
    let b: Vec<f64> = store2.inline(probe2).iter().map(|(_, v)| v).collect();
    assert_eq!(a, b);
}

/// A divergent launch during replay demotes the trace (structured
/// [`TraceViolation`], no panic), the offending launch falls through to
/// normal analysis, and the trace recaptures on later clean instances.
#[test]
fn trace_violation_demotes_and_recaptures() {
    let divergent = |l: &mut Loop| {
        // First launch diverges: read instead of read-write on piece 0.
        let piece = l.rt.forest().subregion(l.p, 0);
        l.rt.launch(
            "w",
            0,
            vec![RegionRequirement::read(piece, l.f)],
            1_000,
            None,
        );
        for i in 1..4 {
            let piece = l.rt.forest().subregion(l.p, i);
            l.rt.launch(
                "w",
                0,
                vec![RegionRequirement::read_write(piece, l.f)],
                1_000,
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|_, v| v + 1.0);
                })),
            );
        }
        for i in 0..4 {
            let ghost = l.rt.forest().subregion(l.g, i);
            l.rt.launch(
                "r",
                0,
                vec![RegionRequirement::reduce(ghost, l.f, RedOpRegistry::SUM)],
                1_000,
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    let dom = rs[0].domain().clone();
                    for pt in dom.points() {
                        rs[0].reduce(pt, 2.0);
                    }
                })),
            );
        }
    };

    let mut l = setup(EngineKind::RayCast);
    for _ in 0..2 {
        l.rt.begin_trace(1);
        iteration(&mut l);
        l.rt.end_trace(1);
    }
    // Third instance would replay, but diverges at its first launch.
    l.rt.begin_trace(1);
    divergent(&mut l);
    l.rt.end_trace(1);
    {
        let violations = l.rt.trace_violations();
        assert_eq!(violations.len(), 1, "one structured violation recorded");
        let v = &violations[0];
        assert_eq!(v.id, TraceId(1));
        assert_eq!(v.cursor, 0, "diverged at the first launch of the instance");
        assert!(
            matches!(v.kind, ViolationKind::RequirementMismatch { index: 0 }),
            "privilege mismatch on requirement 0, got {:?}",
            v.kind
        );
    }
    let replayed_before = l.rt.replayed_launches();

    // The demoted trace recaptures: warm-up + capture + replay.
    for _ in 0..3 {
        l.rt.begin_trace(1);
        iteration(&mut l);
        l.rt.end_trace(1);
    }
    assert_eq!(
        l.rt.replayed_launches(),
        replayed_before + 8,
        "third clean instance after demotion replays again"
    );
    assert!(check_sufficiency(l.rt.forest(), l.rt.launches(), l.rt.dag()).is_empty());
    let probe = l.rt.inline_read(l.root, l.f);
    let store = l.rt.execute_values();

    // Cross-check values against the identical untraced program.
    let mut l2 = setup(EngineKind::RayCast);
    for _ in 0..2 {
        iteration(&mut l2);
    }
    divergent(&mut l2);
    for _ in 0..3 {
        iteration(&mut l2);
    }
    let probe2 = l2.rt.inline_read(l2.root, l2.f);
    let store2 = l2.rt.execute_values();
    let a: Vec<f64> = store.inline(probe).iter().map(|(_, v)| v).collect();
    let b: Vec<f64> = store2.inline(probe2).iter().map(|(_, v)| v).collect();
    assert_eq!(a, b, "post-violation execution diverged from untraced run");
}

/// A replay instance that ends short of the recorded length is a
/// violation: reported, demoted, recaptured — never silently wrong.
#[test]
fn short_replay_instance_is_a_violation() {
    let mut l = setup(EngineKind::RayCast);
    for _ in 0..2 {
        l.rt.begin_trace(1);
        iteration(&mut l);
        l.rt.end_trace(1);
    }
    // Third instance replays but stops after the 4 writes (no reductions).
    l.rt.begin_trace(1);
    for i in 0..4 {
        let piece = l.rt.forest().subregion(l.p, i);
        l.rt.launch(
            "w",
            0,
            vec![RegionRequirement::read_write(piece, l.f)],
            1_000,
            Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                rs[0].update_all(|_, v| v + 1.0);
            })),
        );
    }
    let v = l.rt.end_trace(1).expect("short instance must be reported");
    assert_eq!(v.cursor, 4);
    assert!(matches!(
        v.kind,
        ViolationKind::ShortInstance { recorded_len: 8 }
    ));
    // The runtime keeps going; dependences stay sufficient.
    iteration(&mut l);
    assert!(check_sufficiency(l.rt.forest(), l.rt.launches(), l.rt.dag()).is_empty());
}

/// The rebase interval map must stay O(active traces), not O(instances):
/// each completed replay supersedes the previous instance's interval.
#[test]
fn rebase_map_stays_bounded_across_many_replays() {
    let mut l = setup(EngineKind::RayCast);
    for _ in 0..50 {
        l.rt.begin_trace(1);
        iteration(&mut l);
        l.rt.end_trace(1);
    }
    assert_eq!(l.rt.replayed_launches(), 48 * 8);
    assert!(
        l.rt.trace_rebase_ranges() <= 2,
        "rebase map grew with instance count: {} ranges",
        l.rt.trace_rebase_ranges()
    );
    assert!(check_sufficiency(l.rt.forest(), l.rt.launches(), l.rt.dag()).is_empty());
}

#[test]
fn replay_is_cheaper_in_simulated_time() {
    let measure = |traced: bool| -> u64 {
        let mut l = setup(EngineKind::RayCast);
        for _ in 0..8 {
            if traced {
                l.rt.begin_trace(1);
            }
            iteration(&mut l);
            if traced {
                l.rt.end_trace(1);
            }
        }
        let now = l.rt.machine().now(0);
        now
    };
    let plain = measure(false);
    let traced = measure(true);
    assert!(
        traced < plain,
        "tracing must reduce analysis time: {traced} vs {plain}"
    );
}
