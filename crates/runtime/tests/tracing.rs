//! Dynamic tracing (\[15\]) tests: replayed iterations must be functionally
//! identical to analyzed ones, engine work must actually disappear during
//! replay, and trace violations must be caught.

use std::sync::Arc;
use viz_region::RedOpRegistry;
use viz_runtime::validate::check_sufficiency;
use viz_runtime::{
    EngineKind, LaunchSpec, PhysicalRegion, RegionRequirement, Runtime, RuntimeConfig, TraceId,
    ViolationKind,
};

struct Loop {
    rt: Runtime,
    p: viz_region::PartitionId,
    g: viz_region::PartitionId,
    f: viz_region::FieldId,
    root: viz_region::RegionId,
}

fn setup(engine: EngineKind) -> Loop {
    // Pin auto-tracing off regardless of `VIZ_AUTO_TRACE`: these tests
    // assert exact replay counts for *annotated* traces against untraced
    // control runs (the auto/manual interplay is tested in
    // `autotracing.rs`).
    let mut rt = Runtime::new(RuntimeConfig::new(engine).auto_trace(false));
    let root = rt.forest_mut().create_root_1d("A", 40);
    let f = rt.forest_mut().add_field(root, "v");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", 4);
    let g = rt.forest_mut().create_partition(
        root,
        "G",
        (0..4)
            .map(|i| {
                let lo = (i * 10 - 2).max(0);
                let hi = (i * 10 + 11).min(39);
                viz_geometry::IndexSpace::span(lo, hi)
                    .subtract(&viz_geometry::IndexSpace::span(i * 10, i * 10 + 9))
            })
            .collect(),
    );
    rt.try_set_initial(root, f, |pt| pt.x as f64).unwrap();
    Loop { rt, p, g, f, root }
}

/// One loop iteration: piece writes then ghost reductions.
fn iteration(l: &mut Loop) {
    for i in 0..4 {
        let piece = l.rt.forest().subregion(l.p, i);
        l.rt.submit(LaunchSpec::new(
            "w",
            0,
            vec![RegionRequirement::read_write(piece, l.f)],
            1_000,
            Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                rs[0].update_all(|_, v| v + 1.0);
            })),
        ))
        .unwrap()
        .id();
    }
    for i in 0..4 {
        let ghost = l.rt.forest().subregion(l.g, i);
        l.rt.submit(LaunchSpec::new(
            "r",
            0,
            vec![RegionRequirement::reduce(ghost, l.f, RedOpRegistry::SUM)],
            1_000,
            Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                let dom = rs[0].domain().clone();
                for pt in dom.points() {
                    rs[0].reduce(pt, 2.0);
                }
            })),
        ))
        .unwrap()
        .id();
    }
}

fn run_loop(engine: EngineKind, iters: usize, traced: bool) -> (Vec<f64>, u64, usize) {
    let mut l = setup(engine);
    for _ in 0..iters {
        if traced {
            l.rt.try_begin_trace(1).unwrap();
        }
        iteration(&mut l);
        if traced {
            l.rt.try_end_trace(1).unwrap();
        }
    }
    let probe = l.rt.inline_read(l.root, l.f).unwrap();
    let violations = check_sufficiency(l.rt.forest(), l.rt.launches(), l.rt.dag());
    assert!(
        violations.is_empty(),
        "{engine:?} traced={traced}: {violations:?}"
    );
    let replayed = l.rt.replayed_launches();
    let edges = l.rt.dag().edge_count();
    let store = l.rt.execute_values();
    let vals = store.inline(probe).iter().map(|(_, v)| v).collect();
    (vals, replayed, edges)
}

#[test]
fn traced_loop_matches_untraced_loop() {
    for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
        let (plain, replayed0, edges0) = run_loop(engine, 6, false);
        let (traced, replayed1, edges1) = run_loop(engine, 6, true);
        assert_eq!(plain, traced, "{engine:?}: replay changed results");
        assert_eq!(replayed0, 0);
        // Instances 3..6 replayed: 4 instances × 8 launches.
        assert_eq!(replayed1, 32, "{engine:?}");
        assert_eq!(edges0, edges1, "{engine:?}: replay changed the DAG");
    }
}

#[test]
fn replay_skips_the_visibility_engine() {
    let mut l = setup(EngineKind::RayCast);
    // Warm-up + capture.
    for _ in 0..2 {
        l.rt.try_begin_trace(1).unwrap();
        iteration(&mut l);
        l.rt.try_end_trace(1).unwrap();
    }
    let before = l.rt.machine().counters().clone();
    l.rt.try_begin_trace(1).unwrap();
    assert!(l.rt.is_replaying(), "third instance must replay");
    iteration(&mut l);
    l.rt.try_end_trace(1).unwrap();
    let after = l.rt.machine().counters().clone();
    assert_eq!(after.geom_ops, before.geom_ops, "no geometry during replay");
    assert_eq!(
        after.eqsets_touched, before.eqsets_touched,
        "no equivalence-set work during replay"
    );
    assert_eq!(after.launches, before.launches, "no LaunchOverhead charges");
    assert_eq!(l.rt.replayed_launches(), 8);
}

#[test]
fn interleaved_launches_invalidate_the_template() {
    let mut l = setup(EngineKind::RayCast);
    for _ in 0..3 {
        l.rt.try_begin_trace(1).unwrap();
        iteration(&mut l);
        l.rt.try_end_trace(1).unwrap();
    }
    assert_eq!(l.rt.replayed_launches(), 8);
    // An untraced launch between instances: the template must be dropped
    // and re-captured, not replayed over changed state.
    let root = l.rt.forest().roots()[0];
    l.rt.submit(LaunchSpec::new(
        "intruder",
        0,
        vec![RegionRequirement::read_write(root, l.f)],
        0,
        Some(Arc::new(|rs: &mut [PhysicalRegion]| {
            rs[0].update_all(|_, v| v * 2.0);
        })),
    ))
    .unwrap()
    .id();
    let replayed_before = l.rt.replayed_launches();
    for _ in 0..3 {
        l.rt.try_begin_trace(1).unwrap();
        iteration(&mut l);
        l.rt.try_end_trace(1).unwrap();
    }
    // Re-capture costs two instances; only the third replays.
    assert_eq!(l.rt.replayed_launches(), replayed_before + 8);
    let probe = l.rt.inline_read(l.root, l.f).unwrap();
    assert!(check_sufficiency(l.rt.forest(), l.rt.launches(), l.rt.dag()).is_empty());
    let store = l.rt.execute_values();
    // Cross-check against an untraced run of the same program.
    let mut l2 = setup(EngineKind::RayCast);
    for _ in 0..3 {
        iteration(&mut l2);
    }
    let root2 = l2.rt.forest().roots()[0];
    l2.rt
        .submit(LaunchSpec::new(
            "intruder",
            0,
            vec![RegionRequirement::read_write(root2, l2.f)],
            0,
            Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                rs[0].update_all(|_, v| v * 2.0);
            })),
        ))
        .unwrap()
        .id();
    for _ in 0..3 {
        iteration(&mut l2);
    }
    let probe2 = l2.rt.inline_read(l2.root, l2.f).unwrap();
    let store2 = l2.rt.execute_values();
    let a: Vec<f64> = store.inline(probe).iter().map(|(_, v)| v).collect();
    let b: Vec<f64> = store2.inline(probe2).iter().map(|(_, v)| v).collect();
    assert_eq!(a, b);
}

/// A divergent launch during replay demotes the trace (structured
/// [`TraceViolation`], no panic), the offending launch falls through to
/// normal analysis, and the trace recaptures on later clean instances.
#[test]
fn trace_violation_demotes_and_recaptures() {
    let divergent = |l: &mut Loop| {
        // First launch diverges: read instead of read-write on piece 0.
        let piece = l.rt.forest().subregion(l.p, 0);
        l.rt.submit(LaunchSpec::new(
            "w",
            0,
            vec![RegionRequirement::read(piece, l.f)],
            1_000,
            None,
        ))
        .unwrap()
        .id();
        for i in 1..4 {
            let piece = l.rt.forest().subregion(l.p, i);
            l.rt.submit(LaunchSpec::new(
                "w",
                0,
                vec![RegionRequirement::read_write(piece, l.f)],
                1_000,
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|_, v| v + 1.0);
                })),
            ))
            .unwrap()
            .id();
        }
        for i in 0..4 {
            let ghost = l.rt.forest().subregion(l.g, i);
            l.rt.submit(LaunchSpec::new(
                "r",
                0,
                vec![RegionRequirement::reduce(ghost, l.f, RedOpRegistry::SUM)],
                1_000,
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    let dom = rs[0].domain().clone();
                    for pt in dom.points() {
                        rs[0].reduce(pt, 2.0);
                    }
                })),
            ))
            .unwrap()
            .id();
        }
    };

    let mut l = setup(EngineKind::RayCast);
    for _ in 0..2 {
        l.rt.try_begin_trace(1).unwrap();
        iteration(&mut l);
        l.rt.try_end_trace(1).unwrap();
    }
    // Third instance would replay, but diverges at its first launch.
    l.rt.try_begin_trace(1).unwrap();
    divergent(&mut l);
    l.rt.try_end_trace(1).unwrap();
    {
        let violations = l.rt.trace_violations();
        assert_eq!(violations.len(), 1, "one structured violation recorded");
        let v = &violations[0];
        assert_eq!(v.id, TraceId(1));
        assert_eq!(v.cursor, 0, "diverged at the first launch of the instance");
        assert!(
            matches!(v.kind, ViolationKind::RequirementMismatch { index: 0 }),
            "privilege mismatch on requirement 0, got {:?}",
            v.kind
        );
    }
    let replayed_before = l.rt.replayed_launches();

    // The demoted trace recaptures: warm-up + capture + replay.
    for _ in 0..3 {
        l.rt.try_begin_trace(1).unwrap();
        iteration(&mut l);
        l.rt.try_end_trace(1).unwrap();
    }
    assert_eq!(
        l.rt.replayed_launches(),
        replayed_before + 8,
        "third clean instance after demotion replays again"
    );
    assert!(check_sufficiency(l.rt.forest(), l.rt.launches(), l.rt.dag()).is_empty());
    let probe = l.rt.inline_read(l.root, l.f).unwrap();
    let store = l.rt.execute_values();

    // Cross-check values against the identical untraced program.
    let mut l2 = setup(EngineKind::RayCast);
    for _ in 0..2 {
        iteration(&mut l2);
    }
    divergent(&mut l2);
    for _ in 0..3 {
        iteration(&mut l2);
    }
    let probe2 = l2.rt.inline_read(l2.root, l2.f).unwrap();
    let store2 = l2.rt.execute_values();
    let a: Vec<f64> = store.inline(probe).iter().map(|(_, v)| v).collect();
    let b: Vec<f64> = store2.inline(probe2).iter().map(|(_, v)| v).collect();
    assert_eq!(a, b, "post-violation execution diverged from untraced run");
}

/// A replay instance that ends short of the recorded length is a
/// violation: reported, demoted, recaptured — never silently wrong.
#[test]
fn short_replay_instance_is_a_violation() {
    let mut l = setup(EngineKind::RayCast);
    for _ in 0..2 {
        l.rt.try_begin_trace(1).unwrap();
        iteration(&mut l);
        l.rt.try_end_trace(1).unwrap();
    }
    // Third instance replays but stops after the 4 writes (no reductions).
    l.rt.try_begin_trace(1).unwrap();
    for i in 0..4 {
        let piece = l.rt.forest().subregion(l.p, i);
        l.rt.submit(LaunchSpec::new(
            "w",
            0,
            vec![RegionRequirement::read_write(piece, l.f)],
            1_000,
            Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                rs[0].update_all(|_, v| v + 1.0);
            })),
        ))
        .unwrap()
        .id();
    }
    let v =
        l.rt.try_end_trace(1)
            .unwrap()
            .expect("short instance must be reported");
    assert_eq!(v.cursor, 4);
    assert!(matches!(
        v.kind,
        ViolationKind::ShortInstance { recorded_len: 8 }
    ));
    // The runtime keeps going; dependences stay sufficient.
    iteration(&mut l);
    assert!(check_sufficiency(l.rt.forest(), l.rt.launches(), l.rt.dag()).is_empty());
}

/// A divergence *mid*-replay leaves the engine's frozen state pointing at
/// the unreplayed suffix of the recorded instance — whose entries
/// superseded the replayed prefix's writes. The post-demotion analysis
/// must still order the divergent launch after the prefix, not just after
/// the previous instance (found by the viz-oracle fuzzer).
#[test]
fn mid_replay_divergence_orders_after_replayed_prefix() {
    let mut l = setup(EngineKind::RayCast);
    let piece0 = l.rt.forest().subregion(l.p, 0);
    let piece1 = l.rt.forest().subregion(l.p, 1);
    let w = |l: &mut Loop, region| {
        l.rt.submit(LaunchSpec::new(
            "w",
            0,
            vec![RegionRequirement::read_write(region, l.f)],
            1_000,
            Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                rs[0].update_all(|_, v| v + 1.0);
            })),
        ))
        .unwrap()
        .id()
    };
    // Template [RW p0, RW p0, RW p1]: warm-up (tasks 0-2), capture (3-5).
    for _ in 0..2 {
        l.rt.try_begin_trace(1).unwrap();
        w(&mut l, piece0);
        w(&mut l, piece0);
        w(&mut l, piece1);
        l.rt.try_end_trace(1).unwrap();
    }
    // Third instance: the first RW p0 replays (task 6), then a *read* of
    // p0 diverges from the recorded RW at cursor 1.
    l.rt.try_begin_trace(1).unwrap();
    let prefix = w(&mut l, piece0);
    let divergent =
        l.rt.submit(LaunchSpec::new(
            "probe",
            0,
            vec![RegionRequirement::read(piece0, l.f)],
            1_000,
            None,
        ))
        .unwrap()
        .id();
    l.rt.try_end_trace(1).unwrap();
    let violations = l.rt.trace_violations();
    assert_eq!(violations.len(), 1);
    assert_eq!(
        violations[0].cursor, 1,
        "diverged after one replayed launch"
    );
    // The frozen engine state's last writer of p0 is capture task 4, which
    // superseded task 3 — the launch the prefix replayed as task 6. A dep
    // on 4 alone would let the probe race the prefix's write.
    let dag = l.rt.dag();
    assert!(
        dag.must_follow(divergent, prefix),
        "divergent launch must order after the replayed prefix write: deps {:?}",
        dag.preds(divergent)
    );
    drop(dag);
    assert!(check_sufficiency(l.rt.forest(), l.rt.launches(), l.rt.dag()).is_empty());
}

/// The rebase interval map must stay O(active traces), not O(instances):
/// each completed replay supersedes the previous instance's interval.
#[test]
fn rebase_map_stays_bounded_across_many_replays() {
    let mut l = setup(EngineKind::RayCast);
    for _ in 0..50 {
        l.rt.try_begin_trace(1).unwrap();
        iteration(&mut l);
        l.rt.try_end_trace(1).unwrap();
    }
    assert_eq!(l.rt.replayed_launches(), 48 * 8);
    assert!(
        l.rt.trace_rebase_ranges() <= 2,
        "rebase map grew with instance count: {} ranges",
        l.rt.trace_rebase_ranges()
    );
    assert!(check_sufficiency(l.rt.forest(), l.rt.launches(), l.rt.dag()).is_empty());
}

#[test]
fn replay_is_cheaper_in_simulated_time() {
    let measure = |traced: bool| -> u64 {
        let mut l = setup(EngineKind::RayCast);
        for _ in 0..8 {
            if traced {
                l.rt.try_begin_trace(1).unwrap();
            }
            iteration(&mut l);
            if traced {
                l.rt.try_end_trace(1).unwrap();
            }
        }
        let now = l.rt.machine().now(0);
        now
    };
    let plain = measure(false);
    let traced = measure(true);
    assert!(
        traced < plain,
        "tracing must reduce analysis time: {traced} vs {plain}"
    );
}

/// Regression: an annotated trace whose instance never *overwrites* what it
/// reads is not self-superseding — each iteration leaves a live read epoch
/// behind, and a later interfering launch needs a dependence on **every**
/// instance's read, which the shift-rebase cannot synthesize (it can only
/// point at the latest replay). The runtime must decline to replay such a
/// trace and keep analyzing each instance. Found by the viz-oracle fuzzer
/// (trace-repeats mode): a reduce after the loop ordered against the last
/// instance's read only, leaving the captured instance's read unordered.
#[test]
fn read_only_trace_declines_replay_and_keeps_all_read_epochs() {
    let mut rt = Runtime::new(RuntimeConfig::new(EngineKind::RayCast).auto_trace(false));
    let root = rt.forest_mut().create_root_1d("A", 40);
    let f = rt.forest_mut().add_field(root, "v");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", 4);
    let watched = rt.forest().subregion(p, 1);
    let other = rt.forest().subregion(p, 2);
    let mut reads = Vec::new();
    for _ in 0..4 {
        rt.try_begin_trace(9).unwrap();
        reads.push(
            rt.submit(LaunchSpec::new(
                "r",
                0,
                vec![RegionRequirement::read(watched, f)],
                1_000,
                None,
            ))
            .unwrap()
            .id(),
        );
        rt.submit(LaunchSpec::new(
            "acc",
            0,
            vec![RegionRequirement::reduce(other, f, RedOpRegistry::SUM)],
            1_000,
            None,
        ))
        .unwrap();
        rt.try_end_trace(9).unwrap();
    }
    let reducer = rt
        .submit(LaunchSpec::new(
            "mix",
            0,
            vec![RegionRequirement::reduce(watched, f, RedOpRegistry::MAX)],
            1_000,
            None,
        ))
        .unwrap()
        .id();
    rt.flush();
    assert_eq!(
        rt.replayed_launches(),
        0,
        "a non-self-superseding instance must not be replayed"
    );
    let dag = rt.dag();
    let deps = dag.preds(reducer);
    for r in &reads {
        assert!(
            deps.contains(r),
            "reduce must order after every instance's read: deps {deps:?}, missing {r:?}"
        );
    }
    assert!(check_sufficiency(rt.forest(), rt.launches(), rt.dag()).is_empty());
}
