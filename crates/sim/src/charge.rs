//! Recorded machine charges.
//!
//! The sharded analysis driver runs visibility scans for distinct
//! `(root, field)` shards concurrently, but the simulated [`Machine`] is a
//! sequential pricing model: the order charges are applied in *is* the
//! semantics. Engines therefore record the charges they would have made into
//! a [`ChargeLog`] while scanning, and the driver replays the logs onto the
//! live machine in canonical program order (launch order; within a launch,
//! requirement order). Replaying a log performs exactly the calls the engine
//! would have made directly, so a serial drive and a sharded drive produce
//! byte-identical clocks, counters and traces.

use crate::cost::Op;
use crate::machine::{Machine, NodeId};

/// One deferred call into the [`Machine`] charging API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineCall {
    /// [`Machine::op`].
    Op(NodeId, Op),
    /// [`Machine::send`].
    Send {
        from: NodeId,
        to: NodeId,
        bytes: u64,
    },
    /// [`Machine::request`].
    Request {
        from: NodeId,
        to: NodeId,
        req_bytes: u64,
        resp_bytes: u64,
        work: Vec<Op>,
    },
    /// [`Machine::multi_request`].
    MultiRequest {
        from: NodeId,
        targets: Vec<(NodeId, u64, u64)>,
        work: Vec<Vec<Op>>,
    },
}

/// An append-only sequence of [`MachineCall`]s, recorded during a scan or
/// commit and replayed later in canonical order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChargeLog {
    calls: Vec<MachineCall>,
}

impl ChargeLog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    pub fn len(&self) -> usize {
        self.calls.len()
    }

    pub fn op(&mut self, node: NodeId, op: Op) {
        self.calls.push(MachineCall::Op(node, op));
    }

    pub fn send(&mut self, from: NodeId, to: NodeId, bytes: u64) {
        self.calls.push(MachineCall::Send { from, to, bytes });
    }

    pub fn request(
        &mut self,
        from: NodeId,
        to: NodeId,
        req_bytes: u64,
        resp_bytes: u64,
        work: &[Op],
    ) {
        self.calls.push(MachineCall::Request {
            from,
            to,
            req_bytes,
            resp_bytes,
            work: work.to_vec(),
        });
    }

    pub fn multi_request(
        &mut self,
        from: NodeId,
        targets: Vec<(NodeId, u64, u64)>,
        work: Vec<Vec<Op>>,
    ) {
        self.calls.push(MachineCall::MultiRequest {
            from,
            targets,
            work,
        });
    }

    /// Apply every recorded call to `machine`, in recording order.
    pub fn replay(&self, machine: &mut Machine) {
        for call in &self.calls {
            match call {
                MachineCall::Op(node, op) => machine.op(*node, *op),
                MachineCall::Send { from, to, bytes } => {
                    machine.send(*from, *to, *bytes);
                }
                MachineCall::Request {
                    from,
                    to,
                    req_bytes,
                    resp_bytes,
                    work,
                } => {
                    machine.request(*from, *to, *req_bytes, *resp_bytes, work);
                }
                MachineCall::MultiRequest {
                    from,
                    targets,
                    work,
                } => {
                    let views: Vec<&[Op]> = work.iter().map(|w| w.as_slice()).collect();
                    machine.multi_request(*from, targets, &views);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A recorded log replayed onto a fresh machine must leave it in exactly
    /// the state direct calls would have.
    #[test]
    fn replay_matches_direct_calls() {
        let mut direct = Machine::new(3);
        direct.op(0, Op::LaunchOverhead);
        direct.send(0, 1, 96);
        direct.request(0, 2, 96, 64, &[Op::EqSetCreate]);
        direct.multi_request(
            0,
            &[(1, 120, 96), (2, 120, 96)],
            &[&[Op::HistScan { entries: 3 }], &[Op::SetTouch]],
        );

        let mut log = ChargeLog::new();
        log.op(0, Op::LaunchOverhead);
        log.send(0, 1, 96);
        log.request(0, 2, 96, 64, &[Op::EqSetCreate]);
        log.multi_request(
            0,
            vec![(1, 120, 96), (2, 120, 96)],
            vec![vec![Op::HistScan { entries: 3 }], vec![Op::SetTouch]],
        );
        let mut replayed = Machine::new(3);
        log.replay(&mut replayed);

        assert_eq!(replayed.clocks(), direct.clocks());
        assert_eq!(replayed.service_clocks(), direct.service_clocks());
        assert_eq!(replayed.counters(), direct.counters());
    }
}
