//! Cost model and operation counters.

/// Per-operation costs, in nanoseconds, used to convert the coherence
/// engines' real operation streams into simulated time.
///
/// Defaults are calibrated to a Piz-Daint-like machine (Cray Aries
/// interconnect, one runtime "utility" processor per node) such that
/// single-node analysis rates land in the regime the paper reports (Legion's
/// untraced dynamic analysis costs on the order of tens of microseconds per
/// task, §8 artifact output shows ~60 ms init for single-node stencil).
#[derive(Clone, Debug)]
pub struct CostModel {
    /// One-way message latency.
    pub msg_latency_ns: u64,
    /// Inverse bandwidth (ns per byte); 0.1 ≈ 10 GB/s.
    pub ns_per_byte: f64,
    /// Fixed per-message header/injection overhead on the sender.
    pub msg_overhead_ns: u64,
    /// One index-space overlap/intersection/difference operation, plus a
    /// per-rectangle term for fragmented spaces.
    pub geom_op_ns: u64,
    pub geom_rect_ns: u64,
    /// Scanning one history entry during a visibility traversal.
    pub hist_entry_ns: u64,
    /// Creating an equivalence set (allocation + registration).
    pub eqset_create_ns: u64,
    /// Splitting an equivalence set in two (Warnock refine).
    pub eqset_refine_ns: u64,
    /// Creating a composite view, plus a per-captured-entry term (painter).
    pub view_create_ns: u64,
    pub view_entry_ns: u64,
    /// Fixed dynamic-analysis overhead per task launch (privilege checks,
    /// mapping calls, bookkeeping outside the visibility algorithm).
    pub launch_overhead_ns: u64,
    /// Recording one dependence edge.
    pub dep_record_ns: u64,
    /// Looking up / updating a memoized equivalence-set list.
    pub memo_ns: u64,
    /// Touching one equivalence set during an analysis (metadata lookup,
    /// version bump, user registration).
    pub set_touch_ns: u64,
    /// The painter's per-region-tree-node logical-state walk (open/close
    /// bookkeeping, version maintenance) per requirement — the constant
    /// that Warnock/ray casting eliminate by going straight to equivalence
    /// sets.
    pub paint_walk_node_ns: u64,
    /// Building one replicated refinement-tree (BVH) node descriptor at a
    /// remote reader (Warnock §6.1).
    pub replicate_node_ns: u64,
    /// Per-task execution dispatch overhead on the target processor.
    pub dispatch_ns: u64,
    /// Bytes per region element (all fields are f64).
    pub bytes_per_element: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated against Legion's measured per-task dynamic-analysis
        // costs (tens of microseconds per launch when untraced) so the
        // crossover points between analysis and a ≈ 4–5 ms GPU iteration
        // land in the regimes the paper reports.
        CostModel {
            msg_latency_ns: 1_500,
            ns_per_byte: 0.1,
            msg_overhead_ns: 400,
            geom_op_ns: 700,
            geom_rect_ns: 40,
            hist_entry_ns: 100,
            eqset_create_ns: 800,
            eqset_refine_ns: 600,
            view_create_ns: 4_000,
            view_entry_ns: 100,
            launch_overhead_ns: 15_000,
            dep_record_ns: 100,
            memo_ns: 150,
            set_touch_ns: 1_500,
            paint_walk_node_ns: 10_000,
            replicate_node_ns: 400,
            dispatch_ns: 800,
            bytes_per_element: 8,
        }
    }
}

impl CostModel {
    /// Total wire time for a message of `bytes` (excluding sender overhead).
    #[inline]
    pub fn wire_ns(&self, bytes: u64) -> u64 {
        self.msg_latency_ns + (bytes as f64 * self.ns_per_byte) as u64
    }

    /// Cost of an analysis operation.
    pub fn op_ns(&self, op: Op) -> u64 {
        match op {
            Op::GeomOp { rects } => self.geom_op_ns + self.geom_rect_ns * rects as u64,
            Op::HistScan { entries } => self.hist_entry_ns * entries as u64,
            Op::EqSetCreate => self.eqset_create_ns,
            Op::EqSetRefine => self.eqset_refine_ns,
            Op::SetTouch => self.set_touch_ns,
            Op::PaintWalk { nodes } => self.paint_walk_node_ns * nodes as u64,
            Op::Replicate { nodes } => self.replicate_node_ns * nodes as u64,
            Op::ViewCreate { entries } => self.view_create_ns + self.view_entry_ns * entries as u64,
            Op::LaunchOverhead => self.launch_overhead_ns,
            Op::DepRecord => self.dep_record_ns,
            Op::Memo => self.memo_ns,
            Op::Dispatch => self.dispatch_ns,
        }
    }
}

/// Analysis operations charged by the coherence engines. Each bumps a
/// counter and advances the charged node's clock by [`CostModel::op_ns`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// One index-space set operation touching `rects` rectangles total.
    GeomOp {
        rects: usize,
    },
    /// Scanning `entries` history entries.
    HistScan {
        entries: usize,
    },
    EqSetCreate,
    EqSetRefine,
    /// Touching one equivalence set (scan/commit bookkeeping).
    SetTouch,
    /// The painter's logical walk over `nodes` region-tree nodes.
    PaintWalk {
        nodes: usize,
    },
    /// Replicating `nodes` refinement-tree descriptors.
    Replicate {
        nodes: usize,
    },
    /// Creating a composite view capturing `entries` entries.
    ViewCreate {
        entries: usize,
    },
    LaunchOverhead,
    DepRecord,
    Memo,
    Dispatch,
}

/// Exact operation counts, independent of the time model.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    pub messages: u64,
    pub bytes: u64,
    pub geom_ops: u64,
    pub geom_rects: u64,
    pub hist_entries_scanned: u64,
    pub eqsets_created: u64,
    pub eqsets_refined: u64,
    pub eqsets_touched: u64,
    pub paint_nodes_walked: u64,
    pub nodes_replicated: u64,
    pub views_created: u64,
    pub view_entries: u64,
    pub launches: u64,
    pub deps_recorded: u64,
    pub memo_ops: u64,
    pub dispatches: u64,
}

impl Counters {
    pub fn record(&mut self, op: Op) {
        match op {
            Op::GeomOp { rects } => {
                self.geom_ops += 1;
                self.geom_rects += rects as u64;
            }
            Op::HistScan { entries } => self.hist_entries_scanned += entries as u64,
            Op::EqSetCreate => self.eqsets_created += 1,
            Op::EqSetRefine => self.eqsets_refined += 1,
            Op::SetTouch => self.eqsets_touched += 1,
            Op::PaintWalk { nodes } => self.paint_nodes_walked += nodes as u64,
            Op::Replicate { nodes } => self.nodes_replicated += nodes as u64,
            Op::ViewCreate { entries } => {
                self.views_created += 1;
                self.view_entries += entries as u64;
            }
            Op::LaunchOverhead => self.launches += 1,
            Op::DepRecord => self.deps_recorded += 1,
            Op::Memo => self.memo_ops += 1,
            Op::Dispatch => self.dispatches += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_scales_with_bytes() {
        let c = CostModel::default();
        let small = c.wire_ns(8);
        let big = c.wire_ns(8 * 1024 * 1024);
        assert!(big > small);
        assert!(small >= c.msg_latency_ns);
        // 8 MiB at 10 GB/s ≈ 0.84 ms.
        assert!(big > 500_000 && big < 2_000_000, "big = {big}");
    }

    #[test]
    fn op_costs_are_positive_and_scale() {
        let c = CostModel::default();
        assert!(c.op_ns(Op::EqSetCreate) > 0);
        assert!(c.op_ns(Op::HistScan { entries: 100 }) > c.op_ns(Op::HistScan { entries: 1 }));
        assert!(c.op_ns(Op::GeomOp { rects: 50 }) > c.op_ns(Op::GeomOp { rects: 1 }));
        assert!(c.op_ns(Op::ViewCreate { entries: 10 }) > c.op_ns(Op::ViewCreate { entries: 0 }));
    }

    #[test]
    fn counters_accumulate_per_kind() {
        let mut k = Counters::default();
        k.record(Op::GeomOp { rects: 3 });
        k.record(Op::GeomOp { rects: 2 });
        k.record(Op::EqSetCreate);
        k.record(Op::ViewCreate { entries: 7 });
        assert_eq!(k.geom_ops, 2);
        assert_eq!(k.geom_rects, 5);
        assert_eq!(k.eqsets_created, 1);
        assert_eq!(k.views_created, 1);
        assert_eq!(k.view_entries, 7);
        assert_eq!(k.messages, 0);
    }
}
