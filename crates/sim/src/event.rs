//! A minimal Realm-like event layer (paper reference \[24\]).
//!
//! Realm structures all execution as operations with *event* preconditions;
//! an operation's completion is itself an event. For timing simulation the
//! only thing an event needs to carry is its trigger time, so an
//! [`EventPool`] is simply an arena of simulated timestamps with `merge`
//! (Realm's `Event::merge_events`) computing the max.

use crate::machine::SimTime;

/// A handle to a simulated event. `Event::NO_EVENT` has triggered at time 0.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Event(u32);

impl Event {
    /// The always-triggered event (Realm's `NO_EVENT`).
    pub const NO_EVENT: Event = Event(u32::MAX);
}

/// Arena of event trigger times.
#[derive(Clone, Debug, Default)]
pub struct EventPool {
    times: Vec<SimTime>,
}

impl EventPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an event that triggers at `t`.
    pub fn create(&mut self, t: SimTime) -> Event {
        let e = Event(self.times.len() as u32);
        self.times.push(t);
        e
    }

    /// When does this event trigger?
    pub fn time(&self, e: Event) -> SimTime {
        if e == Event::NO_EVENT {
            0
        } else {
            self.times[e.0 as usize]
        }
    }

    /// An event triggering when all inputs have (Realm `merge_events`).
    pub fn merge(&mut self, events: &[Event]) -> Event {
        let t = events.iter().map(|e| self.time(*e)).max().unwrap_or(0);
        self.create(t)
    }

    /// Number of events created.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_event_is_time_zero() {
        let pool = EventPool::new();
        assert_eq!(pool.time(Event::NO_EVENT), 0);
    }

    #[test]
    fn merge_takes_max() {
        let mut pool = EventPool::new();
        let a = pool.create(10);
        let b = pool.create(25);
        let c = pool.create(7);
        let m = pool.merge(&[a, b, c]);
        assert_eq!(pool.time(m), 25);
    }

    #[test]
    fn merge_of_nothing_is_zero() {
        let mut pool = EventPool::new();
        let m = pool.merge(&[]);
        assert_eq!(pool.time(m), 0);
    }

    #[test]
    fn merge_with_no_event() {
        let mut pool = EventPool::new();
        let a = pool.create(5);
        let m = pool.merge(&[a, Event::NO_EVENT]);
        assert_eq!(pool.time(m), 5);
    }
}
