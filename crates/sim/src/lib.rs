//! # viz-sim
//!
//! A distributed-machine simulator standing in for the Piz Daint
//! supercomputer used in the paper's evaluation (§8, \[1\]) and for the Realm
//! low-level runtime \[24\] beneath Legion.
//!
//! The design goal is honesty about *what* is simulated: the coherence
//! engines in `viz-runtime` run their real data structures and perform every
//! intersection test, history scan, equivalence-set refinement and message
//! for real — this crate only converts those operations into simulated time
//! using a LogP-style cost model:
//!
//! * [`Machine`] — per-node logical clocks for the runtime's analysis
//!   processors and GPUs, point-to-point messages with latency + bandwidth,
//!   and log-depth collectives.
//! * [`CostModel`] — calibrated per-operation costs (defaults produce
//!   magnitudes comparable to the paper's single-node measurements).
//! * [`Counters`] — exact operation counts, independent of the time model;
//!   the benchmark harness reports both.
//! * [`event`] — a minimal Realm-like deferred-execution event layer used by
//!   the executor to propagate completion times through task/copy graphs.

pub mod charge;
pub mod cost;
pub mod event;
pub mod machine;

pub use charge::{ChargeLog, MachineCall};
pub use cost::{CostModel, Counters, Op};
pub use event::{Event, EventPool};
pub use machine::{Machine, NodeId, SimTime};
