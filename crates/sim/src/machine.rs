//! The simulated distributed machine.

use crate::cost::{CostModel, Counters, Op};

/// Simulated time in nanoseconds.
pub type SimTime = u64;

/// A machine node (one Legion process / one GPU in the paper's setup).
pub type NodeId = usize;

/// A LogP-style simulated machine.
///
/// Each node has three logical timelines:
///
/// * a **program clock** — the analysis work a node performs for the task
///   launches it originates (Legion's application/runtime analysis thread);
/// * a **service clock** — the node's message handler, which serves
///   incoming analysis requests *in order*. Requests from many nodes to one
///   owner queue up on its service clock — this is exactly the "one machine
///   handling communication from every other node is a sequential
///   bottleneck" effect the paper observes (§8.1). Crucially, serving does
///   *not* block the node's own program clock (the handlers run on Realm
///   utility processors);
/// * a **GPU clock** — the single accelerator (Piz Daint has one GPU per
///   node; the artifact runs one rank per GPU).
#[derive(Clone, Debug)]
pub struct Machine {
    cost: CostModel,
    counters: Counters,
    clock: Vec<SimTime>,
    service: Vec<SimTime>,
    gpu_free: Vec<SimTime>,
}

impl Machine {
    /// A machine with `nodes` nodes and the default cost model.
    pub fn new(nodes: usize) -> Self {
        Self::with_cost(nodes, CostModel::default())
    }

    pub fn with_cost(nodes: usize, cost: CostModel) -> Self {
        assert!(nodes > 0, "a machine needs at least one node");
        Machine {
            cost,
            counters: Counters::default(),
            clock: vec![0; nodes],
            service: vec![0; nodes],
            gpu_free: vec![0; nodes],
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.clock.len()
    }

    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    pub fn reset_counters(&mut self) {
        self.counters = Counters::default();
    }

    /// Current program-clock time on a node.
    pub fn now(&self, node: NodeId) -> SimTime {
        self.clock[node]
    }

    /// Advance a node's program clock to at least `t`.
    pub fn advance_to(&mut self, node: NodeId, t: SimTime) {
        if self.clock[node] < t {
            self.clock[node] = t;
        }
    }

    /// Execute `ns` of local analysis work on a node.
    pub fn exec_ns(&mut self, node: NodeId, ns: u64) {
        self.clock[node] += ns;
    }

    /// Charge one analysis operation to a node's program clock (and bump
    /// the corresponding counter).
    pub fn op(&mut self, node: NodeId, op: Op) {
        self.counters.record(op);
        self.clock[node] += self.cost.op_ns(op);
    }

    /// Charge a geometry operation proportional to the rectangles involved.
    pub fn geom(&mut self, node: NodeId, rects: usize) {
        self.op(node, Op::GeomOp { rects });
    }

    /// A one-way active message (e.g. a commit notification): the sender
    /// pays injection overhead; the receiver *serves* it (in order) without
    /// blocking its program clock. Returns the service-completion time. A
    /// self-send costs nothing.
    pub fn send(&mut self, from: NodeId, to: NodeId, bytes: u64) -> SimTime {
        if from == to {
            return self.clock[from];
        }
        self.counters.messages += 1;
        self.counters.bytes += bytes;
        let injected = self.clock[from];
        self.clock[from] += self.cost.msg_overhead_ns;
        let arrival = self.clock[from] + self.cost.wire_ns(bytes);
        let serve_start = self.service[to].max(arrival);
        let served = serve_start + self.cost.msg_overhead_ns;
        self.service[to] = served;
        self.trace_message(from, to, bytes, injected, arrival, serve_start, served);
        served
    }

    /// Record one message's send + in-order service on the profiler's
    /// simulated-time tracks (free when profiling is disabled).
    #[allow(clippy::too_many_arguments)]
    fn trace_message(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        injected: SimTime,
        arrival: SimTime,
        serve_start: SimTime,
        served: SimTime,
    ) {
        if !viz_profile::enabled() {
            return;
        }
        viz_profile::sim_event(
            injected,
            self.cost.msg_overhead_ns,
            viz_profile::Track::SimProgram { node: from as u32 },
            viz_profile::EventKind::MsgSend {
                from: from as u32,
                to: to as u32,
                bytes,
            },
        );
        viz_profile::sim_event(
            serve_start,
            served.saturating_sub(serve_start),
            viz_profile::Track::SimService { node: to as u32 },
            viz_profile::EventKind::MsgServe {
                from: from as u32,
                to: to as u32,
                queued_ns: serve_start.saturating_sub(arrival),
            },
        );
    }

    /// A blocking request/response: the requester sends `req_bytes`; the
    /// responder's message handler performs `work` (queued in order on its
    /// service clock); the response of `resp_bytes` returns, and the
    /// requester's program clock advances to its arrival. Returns that
    /// time. A self-request just performs the work locally.
    pub fn request(
        &mut self,
        from: NodeId,
        to: NodeId,
        req_bytes: u64,
        resp_bytes: u64,
        work: &[Op],
    ) -> SimTime {
        if from == to {
            for op in work {
                self.op(from, *op);
            }
            return self.clock[from];
        }
        self.counters.messages += 2;
        self.counters.bytes += req_bytes + resp_bytes;
        let injected = self.clock[from];
        self.clock[from] += self.cost.msg_overhead_ns;
        let arrival = self.clock[from] + self.cost.wire_ns(req_bytes);
        let serve_start = self.service[to].max(arrival);
        let mut served = serve_start;
        for op in work {
            self.counters.record(*op);
            served += self.cost.op_ns(*op);
        }
        served += self.cost.msg_overhead_ns;
        self.service[to] = served;
        self.trace_message(
            from,
            to,
            req_bytes + resp_bytes,
            injected,
            arrival,
            serve_start,
            served,
        );
        let resp_arrival = served + self.cost.wire_ns(resp_bytes);
        self.advance_to(from, resp_arrival);
        self.clock[from]
    }

    /// Several requests issued concurrently (one per target): the requester
    /// pays injection overhead per message, each responder serves in its
    /// own queue, and the requester blocks until the *last* response.
    pub fn multi_request(
        &mut self,
        from: NodeId,
        targets: &[(NodeId, u64, u64)],
        work: &[&[Op]],
    ) -> SimTime {
        debug_assert_eq!(targets.len(), work.len());
        let mut latest = self.clock[from];
        for ((to, req_bytes, resp_bytes), ops) in targets.iter().zip(work) {
            if *to == from {
                for op in *ops {
                    self.op(from, *op);
                }
                continue;
            }
            self.counters.messages += 2;
            self.counters.bytes += req_bytes + resp_bytes;
            let injected = self.clock[from];
            self.clock[from] += self.cost.msg_overhead_ns;
            let arrival = self.clock[from] + self.cost.wire_ns(*req_bytes);
            let serve_start = self.service[*to].max(arrival);
            let mut served = serve_start;
            for op in *ops {
                self.counters.record(*op);
                served += self.cost.op_ns(*op);
            }
            served += self.cost.msg_overhead_ns;
            self.service[*to] = served;
            self.trace_message(
                from,
                *to,
                req_bytes + resp_bytes,
                injected,
                arrival,
                serve_start,
                served,
            );
            latest = latest.max(served + self.cost.wire_ns(*resp_bytes));
        }
        self.advance_to(from, latest);
        self.clock[from]
    }

    /// Schedule a task of `duration_ns` on a node's GPU, not starting before
    /// `ready`. Returns the completion time. GPUs execute one task at a time
    /// (tasks are internally sequential; parallelism is between tasks, §8).
    pub fn gpu_task(&mut self, node: NodeId, ready: SimTime, duration_ns: u64) -> SimTime {
        let start = self.gpu_free[node].max(ready);
        let end = start + duration_ns;
        self.gpu_free[node] = end;
        end
    }

    /// An asynchronous bulk copy (DMA) of `bytes` between nodes, starting no
    /// earlier than `ready`; returns delivery time. Does not occupy the
    /// analysis clocks (Realm copies run on DMA engines). A same-node copy
    /// pays reduced bandwidth only.
    pub fn copy(&mut self, from: NodeId, to: NodeId, bytes: u64, ready: SimTime) -> SimTime {
        if from == to {
            return ready + (bytes as f64 * self.cost.ns_per_byte * 0.25) as u64;
        }
        self.counters.messages += 1;
        self.counters.bytes += bytes;
        ready + self.cost.msg_overhead_ns + self.cost.wire_ns(bytes)
    }

    /// Broadcast `bytes` from `root` to all nodes along a binomial tree;
    /// every node's program clock advances to its receipt time (broadcasts
    /// deliver analysis state the receiver then depends on).
    pub fn broadcast(&mut self, root: NodeId, bytes: u64) {
        let n = self.num_nodes();
        if n == 1 {
            return;
        }
        let hop = self.cost.msg_overhead_ns + self.cost.wire_ns(bytes);
        let t0 = self.clock[root];
        for node in 0..n {
            if node == root {
                continue;
            }
            // Distance in the binomial tree: position of the highest set bit
            // of the rank offset determines the round it is reached.
            let offset = (node + n - root) % n;
            let rounds = usize::BITS - offset.leading_zeros();
            self.counters.messages += 1;
            self.counters.bytes += bytes;
            self.advance_to(node, t0 + hop * rounds as u64);
        }
        self.clock[root] = t0 + hop; // root participates in round one
    }

    /// All-reduce of `bytes` per node: all program clocks converge to a
    /// common time `2·log2(n)` hops after the latest participant.
    pub fn allreduce(&mut self, bytes: u64) {
        let n = self.num_nodes();
        if n == 1 {
            return;
        }
        let latest = *self.clock.iter().max().unwrap();
        let hop = self.cost.msg_overhead_ns + self.cost.wire_ns(bytes);
        let rounds = 2 * (usize::BITS - (n - 1).leading_zeros()) as u64;
        self.counters.messages += 2 * (n as u64 - 1);
        self.counters.bytes += 2 * (n as u64 - 1) * bytes;
        let done = latest + hop * rounds;
        for c in &mut self.clock {
            *c = done;
        }
    }

    /// Synchronize all program clocks (an 8-byte all-reduce).
    pub fn barrier(&mut self) {
        self.allreduce(8);
    }

    /// The simulated wall-clock: the latest time any processor is busy to.
    pub fn time(&self) -> SimTime {
        let a = self.clock.iter().copied().max().unwrap_or(0);
        let s = self.service.iter().copied().max().unwrap_or(0);
        let g = self.gpu_free.iter().copied().max().unwrap_or(0);
        a.max(s).max(g)
    }

    /// Per-node program clocks (diagnostics).
    pub fn clocks(&self) -> &[SimTime] {
        &self.clock
    }

    /// Per-node service clocks (diagnostics).
    pub fn service_clocks(&self) -> &[SimTime] {
        &self.service
    }

    /// Reset all clocks to zero, keeping counters.
    pub fn reset_clocks(&mut self) {
        self.clock.fill(0);
        self.service.fill(0);
        self.gpu_free.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_work_advances_only_that_node() {
        let mut m = Machine::new(4);
        m.exec_ns(2, 1_000);
        assert_eq!(m.now(2), 1_000);
        assert_eq!(m.now(0), 0);
        assert_eq!(m.time(), 1_000);
    }

    #[test]
    fn send_does_not_block_receiver_program_clock() {
        let mut m = Machine::new(2);
        m.exec_ns(0, 10_000);
        let served = m.send(0, 1, 100);
        assert!(served > 10_000);
        assert_eq!(m.now(1), 0, "one-way messages are served, not awaited");
        assert_eq!(m.counters().messages, 1);
        assert_eq!(m.counters().bytes, 100);
        assert!(m.time() >= served, "service time counts toward makespan");
    }

    #[test]
    fn self_send_is_free() {
        let mut m = Machine::new(2);
        m.exec_ns(0, 500);
        let t = m.send(0, 0, 1_000_000);
        assert_eq!(t, 500);
        assert_eq!(m.counters().messages, 0);
    }

    #[test]
    fn request_blocks_requester_for_round_trip() {
        let mut m = Machine::new(2);
        let t = m.request(0, 1, 64, 64, &[Op::EqSetCreate]);
        // Requester waited for two wire traversals plus remote work.
        assert!(t >= 2 * m.cost().wire_ns(64));
        assert_eq!(m.now(0), t);
        assert_eq!(m.counters().messages, 2);
        assert_eq!(m.counters().eqsets_created, 1);
        assert_eq!(m.now(1), 0, "responder's program clock is untouched");
    }

    #[test]
    fn request_to_self_costs_only_work() {
        let mut m = Machine::new(2);
        let t = m.request(1, 1, 64, 64, &[Op::EqSetCreate]);
        assert_eq!(t, m.cost().op_ns(Op::EqSetCreate));
        assert_eq!(m.counters().messages, 0);
    }

    #[test]
    fn requests_to_one_owner_queue_in_order() {
        // The §8.1 bottleneck: many nodes asking one owner serialize on its
        // service clock.
        let mut m = Machine::new(9);
        let mut last = 0;
        for from in 1..9 {
            last = m.request(from, 0, 64, 64, &[Op::EqSetRefine]);
        }
        // The 8th requester waits behind seven earlier served requests.
        let min_serial = 8 * m.cost().op_ns(Op::EqSetRefine);
        assert!(
            last > min_serial,
            "service queue must serialize: {last} vs {min_serial}"
        );
        assert_eq!(m.now(0), 0, "owner's own program clock is free");
    }

    #[test]
    fn symmetric_exchange_does_not_ratchet_clocks() {
        // Two nodes exchanging requests repeatedly must accumulate only
        // their own costs — not transitively serialize the whole machine.
        let mut m = Machine::new(2);
        for _ in 0..100 {
            m.request(0, 1, 64, 64, &[]);
            m.request(1, 0, 64, 64, &[]);
        }
        let per_rtt = 2 * (m.cost().msg_overhead_ns + m.cost().wire_ns(64));
        // Each node did 100 round trips; allow generous service slack.
        assert!(m.now(0) < 100 * (per_rtt + 4 * m.cost().msg_overhead_ns));
    }

    #[test]
    fn multi_request_overlaps_round_trips() {
        let mut m1 = Machine::new(4);
        m1.multi_request(
            0,
            &[(1, 64, 64), (2, 64, 64), (3, 64, 64)],
            &[&[Op::EqSetCreate], &[Op::EqSetCreate], &[Op::EqSetCreate]],
        );
        let parallel = m1.now(0);
        let mut m2 = Machine::new(4);
        for to in 1..4 {
            m2.request(0, to, 64, 64, &[Op::EqSetCreate]);
        }
        let serial = m2.now(0);
        assert!(
            parallel < serial,
            "concurrent requests ({parallel}) must beat sequential ({serial})"
        );
        assert_eq!(m1.counters().messages, 6);
    }

    #[test]
    fn gpu_serializes_tasks() {
        let mut m = Machine::new(1);
        let e1 = m.gpu_task(0, 0, 100);
        let e2 = m.gpu_task(0, 0, 100);
        assert_eq!(e1, 100);
        assert_eq!(e2, 200, "second task queues behind the first");
        let e3 = m.gpu_task(0, 1_000, 50);
        assert_eq!(e3, 1_050, "ready time respected");
    }

    #[test]
    fn copy_is_asynchronous() {
        let mut m = Machine::new(2);
        let before = m.now(0);
        let t = m.copy(0, 1, 8_000, 500);
        assert!(t > 500);
        assert_eq!(m.now(0), before, "copies do not occupy analysis clocks");
    }

    #[test]
    fn broadcast_reaches_everyone_log_depth() {
        let mut m = Machine::new(8);
        m.exec_ns(0, 1_000);
        m.broadcast(0, 64);
        let hop = m.cost().msg_overhead_ns + m.cost().wire_ns(64);
        for node in 1..8 {
            assert!(m.now(node) > 1_000);
            assert!(m.now(node) <= 1_000 + 3 * hop, "log2(8) = 3 rounds max");
        }
        assert_eq!(m.counters().messages, 7);
    }

    #[test]
    fn allreduce_converges_clocks() {
        let mut m = Machine::new(4);
        m.exec_ns(3, 9_999);
        m.allreduce(8);
        let t = m.now(0);
        for node in 0..4 {
            assert_eq!(m.now(node), t);
        }
        assert!(t > 9_999);
    }

    #[test]
    fn single_node_collectives_are_free() {
        let mut m = Machine::new(1);
        m.exec_ns(0, 77);
        m.broadcast(0, 1024);
        m.allreduce(1024);
        m.barrier();
        assert_eq!(m.now(0), 77);
        assert_eq!(m.counters().messages, 0);
    }

    #[test]
    fn op_charging_advances_clock_and_counters() {
        let mut m = Machine::new(2);
        m.op(1, Op::HistScan { entries: 10 });
        assert_eq!(m.counters().hist_entries_scanned, 10);
        assert_eq!(m.now(1), m.cost().op_ns(Op::HistScan { entries: 10 }));
    }

    #[test]
    fn reset_clocks_keeps_counters() {
        let mut m = Machine::new(2);
        m.send(0, 1, 10);
        m.reset_clocks();
        assert_eq!(m.time(), 0);
        assert_eq!(m.counters().messages, 1);
    }
}
