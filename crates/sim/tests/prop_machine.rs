//! Property tests for the simulated machine's timing invariants.

use proptest::prelude::*;
use viz_sim::{Machine, Op};

#[derive(Clone, Debug)]
enum Action {
    Exec { node: u8, ns: u32 },
    Send { from: u8, to: u8, bytes: u16 },
    Request { from: u8, to: u8 },
    GpuTask { node: u8, dur: u32 },
    Barrier,
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u8..4, 1u32..10_000).prop_map(|(node, ns)| Action::Exec { node, ns }),
        (0u8..4, 0u8..4, 0u16..4096).prop_map(|(from, to, bytes)| Action::Send { from, to, bytes }),
        (0u8..4, 0u8..4).prop_map(|(from, to)| Action::Request { from, to }),
        (0u8..4, 1u32..10_000).prop_map(|(node, dur)| Action::GpuTask { node, dur }),
        Just(Action::Barrier),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Clocks never run backwards, makespan dominates every clock, and
    /// message/byte counters match the actions taken.
    #[test]
    fn clocks_are_monotone_and_counted(actions in prop::collection::vec(action(), 1..40)) {
        let mut m = Machine::new(4);
        let mut prev: Vec<u64> = vec![0; 4];
        let mut expect_msgs = 0u64;
        for a in &actions {
            match a {
                Action::Exec { node, ns } => m.exec_ns(*node as usize, *ns as u64),
                Action::Send { from, to, bytes } => {
                    m.send(*from as usize, *to as usize, *bytes as u64);
                    if from != to {
                        expect_msgs += 1;
                    }
                }
                Action::Request { from, to } => {
                    m.request(*from as usize, *to as usize, 64, 64, &[Op::Memo]);
                    if from != to {
                        expect_msgs += 2;
                    }
                }
                Action::GpuTask { node, dur } => {
                    m.gpu_task(*node as usize, 0, *dur as u64);
                }
                Action::Barrier => {
                    m.barrier();
                    // An all-reduce on 4 nodes is 2·(n−1) messages.
                    expect_msgs += 6;
                }
            }
            for (n, p) in prev.iter_mut().enumerate() {
                prop_assert!(m.now(n) >= *p, "clock {n} ran backwards");
                *p = m.now(n);
            }
        }
        prop_assert_eq!(m.counters().messages, expect_msgs);
        for n in 0..4 {
            prop_assert!(m.time() >= m.now(n));
        }
    }

    /// A GPU can never finish a set of tasks faster than their total
    /// duration, and never leaves gaps when everything is ready at 0.
    #[test]
    fn gpu_utilization_is_exact(durs in prop::collection::vec(1u32..100_000, 1..30)) {
        let mut m = Machine::new(1);
        let mut last = 0;
        for d in &durs {
            last = m.gpu_task(0, 0, *d as u64);
        }
        let total: u64 = durs.iter().map(|d| *d as u64).sum();
        prop_assert_eq!(last, total, "back-to-back tasks pack exactly");
    }

    /// `multi_request` never takes longer than the same requests issued
    /// sequentially, and at least as long as the slowest single one.
    #[test]
    fn multi_request_bounds(targets in prop::collection::vec(1usize..4, 1..6)) {
        let specs: Vec<(usize, u64, u64)> =
            targets.iter().map(|t| (*t, 64, 64)).collect();
        let works: Vec<&[Op]> = targets.iter().map(|_| &[Op::EqSetCreate][..]).collect();
        let mut par = Machine::new(4);
        par.multi_request(0, &specs, &works);
        let mut seq = Machine::new(4);
        for (t, _, _) in &specs {
            seq.request(0, *t, 64, 64, &[Op::EqSetCreate]);
        }
        prop_assert!(par.now(0) <= seq.now(0));
        // Lower bound: one full round trip.
        let mut single = Machine::new(4);
        single.request(0, targets[0], 64, 64, &[Op::EqSetCreate]);
        prop_assert!(par.now(0) >= single.now(0) || targets.iter().all(|t| *t == 0));
    }

    /// Barriers synchronize: afterwards all program clocks are equal and at
    /// least the previous maximum.
    #[test]
    fn barrier_synchronizes(work in prop::collection::vec(0u32..50_000, 4)) {
        let mut m = Machine::new(4);
        for (n, w) in work.iter().enumerate() {
            m.exec_ns(n, *w as u64);
        }
        let max_before = (0..4).map(|n| m.now(n)).max().unwrap();
        m.barrier();
        let t = m.now(0);
        prop_assert!(t >= max_before);
        for n in 1..4 {
            prop_assert_eq!(m.now(n), t);
        }
    }
}
