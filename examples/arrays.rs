//! Implicitly-distributed arrays (the Legate-NumPy style the paper's intro
//! motivates): build a deferred pipeline of array ops, let the visibility
//! analysis find the parallelism and communication, execute once.
//!
//! Run: `cargo run --release --example arrays`

use visibility::prelude::*;

fn main() {
    let mut rt = Runtime::new(RuntimeConfig::new(EngineKind::RayCast).nodes(4));

    // y = 3x + sin-ish(x), then a smoothing pass, a slice overwrite, and
    // reductions — all deferred, all analyzed dynamically.
    let x = DistArray::from_fn(&mut rt, 64, 8, |i| (i % 10) as f64);
    let ax = x.map(&mut rt, |v| v * 3.0);
    let y = DistArray::from_fn(&mut rt, 64, 8, |i| (i % 4) as f64 * 0.5);
    let z = ax.add(&mut rt, &y);
    // Smoothing: z[i] += 0.25 * z[i+1] (halo exchange across pieces, with
    // the halo partition computed by dependent partitioning).
    z.shift_add(&mut rt, 1, 0.25);
    // An aliased slice write across piece boundaries.
    z.fill_slice(&mut rt, 30, 40, 0.0);
    let total = z.sum(&mut rt);
    let smallest = z.min(&mut rt);
    let dot = z.dot(&mut rt, &x);
    let snapshot = z.probe(&mut rt);

    println!(
        "pipeline: {} tasks, {} dependence edges, waves {:?}",
        rt.num_tasks(),
        rt.dag().edge_count(),
        rt.dag().waves().iter().map(Vec::len).collect::<Vec<_>>()
    );

    let store = rt.execute_values();
    let v = snapshot.get(&store);
    println!("z[0..8]   = {:?}", &v[0..8]);
    println!("z[28..44] = {:?} (slice zeroed)", &v[28..44]);
    println!("sum(z)    = {}", total.get(&store));
    println!("min(z)    = {}", smallest.get(&store));
    println!("dot(z, x) = {}", dot.get(&store));
    assert_eq!(smallest.get(&store), 0.0);
    assert!(v[30..=40].iter().all(|e| *e == 0.0));
}
