//! The circuit benchmark (§8) — irregular graph, sparse aliased ghost
//! regions, `reduce+` charge updates. Verifies value mode bit-exactly and
//! prints the analysis footprint per engine.
//!
//! Run: `cargo run --release --example circuit`

use visibility::apps::{Circuit, CircuitConfig, Workload};
use visibility::prelude::*;
use visibility::runtime::validate::check_sufficiency;

fn main() {
    println!("circuit: 6 pieces, 12 nodes/piece, 20 wires/piece, 4 iterations\n");
    println!(
        "{:<10} {:>6} {:>7} {:>9} {:>11} {:>14}",
        "engine", "tasks", "edges", "eq-sets", "views", "verified"
    );
    for engine in EngineKind::all() {
        let app = Circuit::new(CircuitConfig::small(6, 4));
        let mut rt = Runtime::single_node(engine);
        let run = app.execute(&mut rt);
        let violations = check_sufficiency(rt.forest(), rt.launches(), rt.dag());
        assert!(violations.is_empty(), "{engine:?}: {violations:?}");
        let store = rt.execute_values();
        let expect = app.reference();
        for (probe, exp) in run.probes.iter().zip(&expect) {
            let got: Vec<f64> = store.inline(*probe).iter().map(|(_, v)| v).collect();
            assert_eq!(&got, exp);
        }
        let st = rt.stats().state;
        println!(
            "{:<10} {:>6} {:>7} {:>9} {:>11} {:>14}",
            rt.engine_name(),
            rt.num_tasks(),
            rt.dag().edge_count(),
            st.equivalence_sets,
            st.composite_views,
            "bit-exact"
        );
    }
    println!(
        "\nNote the equivalence-set counts: ray casting's dominating writes \
         coalesce\nwhat Warnock's monotonic refinement keeps forever (§7)."
    );
}
