//! The paper's running example, end to end: the Fig 1 program, the Fig 5
//! task stream, and the §3.2 dependence structure, under all three
//! visibility engines.
//!
//! ```text
//! task t1(p<Node>, g<Node>): read-write p.up, reduce::+ g.down;
//! task t2(p<Node>, g<Node>): read-write p.down, reduce::+ g.up;
//! while (*) { for i in 1..3 t1(P[i],G[i]); for i in 1..3 t2(P[i],G[i]) }
//! ```
//!
//! Run: `cargo run --example graph_ghost`

// Deprecated-wrapper allowlist (PR 4): still exercises `launch`/`run_batch`/
// `set_initial`/`begin_trace`; migrate to `submit` and the `try_*` forms in PR 5.
use std::sync::Arc;
use visibility::prelude::*;

/// Build the Fig 2 region tree: nodes N with a disjoint primary partition P
/// and an aliased ghost partition G, two fields `up` and `down`.
fn build(
    rt: &mut Runtime,
) -> (
    viz_region::RegionId,
    viz_region::PartitionId,
    viz_region::PartitionId,
    viz_region::FieldId,
    viz_region::FieldId,
) {
    let n = rt.forest_mut().create_root_1d("N", 30);
    let up = rt.forest_mut().add_field(n, "up");
    let down = rt.forest_mut().add_field(n, "down");
    let p = rt.forest_mut().create_equal_partition_1d(n, "P", 3);
    let g = rt.forest_mut().create_partition(
        n,
        "G",
        vec![
            IndexSpace::from_points([10, 11, 20].map(Point::p1)),
            IndexSpace::from_points([8, 9, 20, 21].map(Point::p1)),
            IndexSpace::from_points([9, 18, 19].map(Point::p1)),
        ],
    );
    (n, p, g, up, down)
}

fn run_engine(engine: EngineKind) {
    let mut rt = Runtime::single_node(engine);
    let (n, p, g, up, down) = build(&mut rt);

    // Two loop iterations of the Fig 1 while-loop.
    for _iter in 0..2 {
        // t1: read-write P[i].up, reduce+ G[i].down
        for i in 0..3 {
            let piece = rt.forest().subregion(p, i);
            let ghost = rt.forest().subregion(g, i);
            rt.submit(LaunchSpec::new(
                "t1",
                0,
                vec![
                    RegionRequirement::read_write(piece, up),
                    RegionRequirement::reduce(ghost, down, RedOpRegistry::SUM),
                ],
                0,
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    // up[p] += 1 over the piece; down[g] gets +up-ish noise.
                    rs[0].update_all(|_, v| v + 1.0);
                    let dom = rs[1].domain().clone();
                    for pt in dom.points() {
                        rs[1].reduce(pt, 0.5);
                    }
                })),
            ))
            .unwrap()
            .id();
        }
        // t2: read-write P[i].down, reduce+ G[i].up
        for i in 0..3 {
            let piece = rt.forest().subregion(p, i);
            let ghost = rt.forest().subregion(g, i);
            rt.submit(LaunchSpec::new(
                "t2",
                0,
                vec![
                    RegionRequirement::read_write(piece, down),
                    RegionRequirement::reduce(ghost, up, RedOpRegistry::SUM),
                ],
                0,
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|_, v| v * 0.5);
                    let dom = rs[1].domain().clone();
                    for pt in dom.points() {
                        rs[1].reduce(pt, 0.25);
                    }
                })),
            ))
            .unwrap()
            .id();
        }
    }
    let probe_up = rt.inline_read(n, up).unwrap();
    let probe_down = rt.inline_read(n, down).unwrap();

    // §3.2: "t6 has a dependence on tasks t3, t4, and t5 … In turn t3 has
    // dependences on t0, t1, and t2" — check the up-field part of the
    // structure (our t1 tasks also reduce to down, adding edges there).
    let dag = rt.dag();
    let t6_deps = dag.preds(TaskId(6));
    assert!(t6_deps.contains(&TaskId(0)), "t6 overwrites t0's up values");
    assert!(
        t6_deps.iter().any(|d| (3..6).contains(&d.0)),
        "t6 must wait for the ghost reductions overlapping P[0]"
    );
    for t in [3u32, 4, 5] {
        let deps = dag.preds(TaskId(t));
        assert!(
            deps.iter().all(|d| d.0 < 3) && !deps.is_empty(),
            "t{t} depends only on first-wave tasks: {deps:?}"
        );
    }

    let waves = dag.waves();
    drop(dag);
    println!(
        "{:<8} edges {:>3}  waves {:?}",
        rt.engine_name(),
        rt.dag().edge_count(),
        waves.iter().map(Vec::len).collect::<Vec<_>>()
    );

    let store = rt.execute_values();
    let up0 = store.inline(probe_up).get(Point::p1(20));
    let down0 = store.inline(probe_down).get(Point::p1(20));
    println!("         node 20: up = {up0}, down = {down0}");
}

fn main() {
    println!("The Fig 1 graph program under each visibility engine:");
    for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
        run_engine(engine);
    }
    println!("All engines agree on the dependence structure of §3.2.");
}
