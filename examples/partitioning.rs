//! Dependent partitioning (reference [25]): computing the Fig 2 ghost
//! partition from a graph's edges instead of writing it by hand, then
//! running the Fig 1 program on it with index launches.
//!
//! Run: `cargo run --release --example partitioning`

// Deprecated-wrapper allowlist (PR 4): still exercises `launch`/`run_batch`/
// `set_initial`/`begin_trace`; migrate to `submit` and the `try_*` forms in PR 5.
use std::sync::Arc;
use visibility::prelude::*;
use visibility::region::deppart;
use visibility::runtime::{Projection, TaskBody};

fn main() {
    let mut rt = Runtime::single_node(EngineKind::RayCast);

    // A small graph: 12 nodes in 3 pieces, edges crossing the boundaries.
    let nodes = rt.forest_mut().create_root_1d("nodes", 12);
    let up = rt.forest_mut().add_field(nodes, "up");
    let edges_root = rt.forest_mut().create_root_1d("edges", 8);
    let edges = [
        (0, 1),
        (1, 4), // crosses piece 0 → 1
        (4, 5),
        (5, 9), // crosses piece 1 → 2
        (9, 10),
        (10, 2), // crosses piece 2 → 0
        (3, 7),  // crosses piece 0 → 1
        (8, 11),
    ];

    let p = rt.forest_mut().create_equal_partition_1d(nodes, "P", 3);
    let we = rt
        .forest_mut()
        .create_equal_partition_1d(edges_root, "E", 3); // 8 edges → 3,3,2

    // The Fig 2 construction: nodes each piece's edges *touch*, minus the
    // nodes it owns = its ghost nodes.
    let touched = deppart::image(&mut rt.forest_mut(), we, nodes, "touched", move |pt| {
        let (s, d) = edges[pt.x as usize];
        vec![Point::p1(s), Point::p1(d)]
    });
    let g = deppart::difference(&mut rt.forest_mut(), touched, p, "G");

    println!("computed ghost partition (image(E) \\ P):");
    for i in 0..3 {
        let sub = rt.forest().subregion(g, i);
        let pts: Vec<i64> = rt.forest().domain(sub).points().map(|p| p.x).collect();
        println!("  G[{i}] = {pts:?}");
    }
    assert!(!rt.forest().is_complete(g), "ghosts never cover everything");

    // Run two turns of the Fig 1 loop over the computed partitions.
    rt.try_set_initial(nodes, up, |p| p.x as f64).unwrap();
    for _ in 0..2 {
        rt.index_launch(
            "t1",
            3,
            &[Projection::read_write(p, up)],
            0,
            |i| i,
            |_| {
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|_, v| v + 1.0);
                }) as TaskBody)
            },
        );
        rt.index_launch(
            "t2",
            3,
            &[Projection::reduce(g, up, RedOpRegistry::SUM)],
            0,
            |i| i,
            |_| {
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    let dom = rs[0].domain().clone();
                    for pt in dom.points() {
                        rs[0].reduce(pt, 100.0);
                    }
                }) as TaskBody)
            },
        );
    }
    let probe = rt.inline_read(nodes, up).unwrap();
    println!(
        "\ntasks: {}, dependence edges: {}, waves: {:?}",
        rt.num_tasks(),
        rt.dag().edge_count(),
        rt.dag().waves().iter().map(Vec::len).collect::<Vec<_>>()
    );
    let store = rt.execute_values();
    let vals = store.inline(probe);
    // Node 4 is ghost for piece 0 (edge 1→4): written +1 twice, reduced
    // +100 twice.
    assert_eq!(vals.get(Point::p1(4)), 4.0 + 2.0 + 200.0);
    println!(
        "node 4 final value: {} (= 4 + 2 writes + 2 ghost reductions)",
        vals.get(Point::p1(4))
    );
}
