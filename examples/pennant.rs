//! The Pennant benchmark (§8) — Lagrangian hydro with gather/scatter point
//! phases and *two distinct reduction operators* (`reduce+` forces,
//! `reduce min` time step).
//!
//! Run: `cargo run --release --example pennant`

use visibility::apps::{Pennant, PennantConfig, Workload};
use visibility::prelude::*;
use visibility::runtime::validate::check_sufficiency;

fn main() {
    println!("pennant: 3 strips of 4x3 zones, 3 iterations\n");
    for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
        let app = Pennant::new(PennantConfig::small(3, 3));
        let mut rt = Runtime::single_node(engine);
        let run = app.execute(&mut rt);
        let violations = check_sufficiency(rt.forest(), rt.launches(), rt.dag());
        assert!(violations.is_empty(), "{engine:?}: {violations:?}");
        let store = rt.execute_values();
        let expect = app.reference();
        for (probe, exp) in run.probes.iter().zip(&expect) {
            let got: Vec<f64> = store.inline(*probe).iter().map(|(_, v)| v).collect();
            assert_eq!(&got, exp);
        }
        // The dt probe is the last one: the global reduce-min result.
        let dt = store.inline(*run.probes.last().unwrap()).get(Point::p1(0));
        println!(
            "{:<10} tasks {:>3}  edges {:>4}  critical path {:>2}  dt = {:.6}  (bit-exact)",
            rt.engine_name(),
            rt.num_tasks(),
            rt.dag().edge_count(),
            rt.dag().critical_path_len(),
            dt
        );
    }
    println!(
        "\nEvery piece's calc_dt reduces (min) into one control element and \
         every\nmove_points reads it back: one global synchronization point per \
         iteration,\nfound automatically by the dependence analysis."
    );
}
