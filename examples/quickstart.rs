//! Quickstart: the paper's core ideas in sixty lines.
//!
//! A collection is partitioned two ways — a disjoint *primary* partition
//! and an aliased *ghost* partition (Fig 2). Tasks write through one and
//! reduce through the other; the runtime's visibility analysis finds the
//! parallelism and assembles coherent inputs, with no explicit
//! communication in the program.
//!
//! Run: `cargo run --example quickstart`

use visibility::prelude::*;

fn main() {
    // The ray-casting engine — the algorithm Legion adopted (§8), with the
    // pipelined frontend: submissions enqueue to an analysis driver thread
    // and the dependence analysis overlaps the rest of `main`.
    let mut rt = Runtime::new(
        RuntimeConfig::new(EngineKind::RayCast)
            .nodes(1)
            .pipeline(true),
    );

    // A 1-D collection of 30 nodes with one field, like Fig 1's graph.
    let n = rt.forest_mut().create_root_1d("N", 30);
    let f = rt.forest_mut().add_field(n, "up");

    // Primary partition: three disjoint pieces.
    let p = rt.forest_mut().create_equal_partition_1d(n, "P", 3);
    // Ghost partition: each piece names a few *other* pieces' elements —
    // aliased and incomplete, which name-based systems cannot express.
    let ghosts = vec![
        IndexSpace::from_points([10, 11, 20].map(Point::p1)),
        IndexSpace::from_points([8, 9, 20, 21].map(Point::p1)),
        IndexSpace::from_points([9, 18, 19].map(Point::p1)),
    ];
    let g = rt.forest_mut().create_partition(n, "G", ghosts);

    // Phase 1: each piece writes its own elements (parallel).
    for i in 0..3 {
        let piece = rt.forest().subregion(p, i);
        rt.task("t1")
            .write(piece, f)
            .body(|rs: &mut [PhysicalRegion]| {
                rs[0].update_all(|pt, _| pt.x as f64);
            })
            .submit()
            .expect("valid launch");
    }
    // Phase 2: each piece reduces +1 into its ghost elements (parallel
    // among themselves — same reduction operator — but ordered after the
    // writes they overlap).
    for _ in 0..3 {}
    for i in 0..3 {
        let ghost = rt.forest().subregion(g, i);
        rt.task("t2")
            .reduce(ghost, f, RedOpRegistry::SUM)
            .body(|rs: &mut [PhysicalRegion]| {
                let dom = rs[0].domain().clone();
                for pt in dom.points() {
                    rs[0].reduce(pt, 1.0);
                }
            })
            .submit()
            .expect("valid launch");
    }

    // Read everything back: the engine assembles values from the writers
    // and folds the pending reductions, in sequential-semantics order.
    let probe = rt.inline_read(n, f).unwrap();

    println!("engine        : {}", rt.engine_name());
    println!("tasks         : {}", rt.num_tasks());
    println!("dependences   : {}", rt.dag().edge_count());
    println!(
        "parallel waves: {:?}",
        rt.dag().waves().iter().map(Vec::len).collect::<Vec<_>>()
    );

    let store = rt.execute_values();
    let vals = store.inline(probe);
    // Element 20 was written as 20.0 and then reduced by G[0] and G[1].
    assert_eq!(vals.get(Point::p1(20)), 22.0);
    // Element 5 is in no ghost subregion: just its write.
    assert_eq!(vals.get(Point::p1(5)), 5.0);
    println!(
        "value[20]     : {} (write 20 + two ghost reductions)",
        vals.get(Point::p1(20))
    );
    println!("value[5]      : {} (write only)", vals.get(Point::p1(5)));
}
