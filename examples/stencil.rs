//! The 2-D stencil benchmark (§8), small scale, with verification and a
//! simulated weak-scaling mini-sweep.
//!
//! Run: `cargo run --release --example stencil`

use visibility::apps::{Stencil, StencilConfig};
use visibility::prelude::*;
use visibility::runtime::validate::check_sufficiency;

fn main() {
    // ---- Value mode: run a small grid under every engine and verify the
    // results against the serial reference, bit for bit.
    println!("value mode: 4 tiles of 8x8, 3 iterations");
    for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
        let app = Stencil::new(StencilConfig::small(4, 8, 3));
        let mut rt = Runtime::single_node(engine);
        let run = app.execute(&mut rt);
        let violations = check_sufficiency(rt.forest(), rt.launches(), rt.dag());
        assert!(violations.is_empty());
        let store = rt.execute_values();
        let expect = app.reference();
        for (probe, exp) in run.probes.iter().zip(&expect) {
            let got: Vec<f64> = store.inline(*probe).iter().map(|(_, v)| v).collect();
            assert_eq!(&got, exp);
        }
        println!(
            "  {:<8} tasks {:>3}  edges {:>4}  verified bit-exact",
            rt.engine_name(),
            rt.num_tasks(),
            rt.dag().edge_count()
        );
    }

    // ---- Timed mode: a mini weak-scaling sweep on the simulated machine
    // (the full Figs 12/15 sweep is `cargo run --release -p viz-bench --bin
    // figures -- --fig 15`).
    println!("\ntimed mode: weak scaling, one 6400^2 tile per node");
    println!(
        "{:<7} {:>10} {:>16} {:>14}",
        "nodes", "init (s)", "per-iter (ms)", "Gpoints/s/node"
    );
    for nodes in [1usize, 4, 16, 64] {
        let app = Stencil::new(StencilConfig::paper(nodes));
        let mut rt = Runtime::new(
            RuntimeConfig::new(EngineKind::RayCast)
                .nodes(nodes)
                .validate(false),
        );
        let run = app.execute(&mut rt);
        let report = rt.timed_schedule();
        let init = report.completion_through(run.iter_end[0]);
        let total = report.completion_through(*run.iter_end.last().unwrap());
        let iters = run.iter_end.len() - 1;
        let per_iter = (total - init) as f64 / iters as f64;
        let tput = run.elements_per_iter as f64 / (per_iter * 1e-9) / nodes as f64;
        println!(
            "{:<7} {:>10.4} {:>16.3} {:>14.2}",
            nodes,
            init as f64 * 1e-9,
            per_iter * 1e-6,
            tput / 1e9
        );
    }
}
