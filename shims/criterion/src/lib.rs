//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this vendors the
//! driver API surface the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`)
//! over a plain wall-clock sampler: per benchmark it warms up, then takes
//! `sample_size` samples and reports min/median/mean. No statistics
//! machinery, no HTML reports — numbers on stdout, which is what the
//! figure pipeline consumes.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// The real criterion reads `--bench`-style CLI filters here; the shim
    /// accepts and ignores them (benches are cheap enough to always run).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let mut g = self.benchmark_group(name.clone());
        g.bench_function("", f);
        g.finish();
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        self.run(id.to_string(), &mut f);
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(id.to_string(), &mut |b| f(b, input));
    }

    pub fn finish(self) {}

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let label = if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{id}", self.name)
        };
        // Warm-up: run until the warm-up window elapses, measuring the
        // per-call cost to size the measurement batches.
        let warm_deadline = Instant::now() + self.criterion.warm_up_time;
        let mut calls = 0u64;
        let warm_start = Instant::now();
        loop {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            calls += b.iters.max(1);
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let per_call = warm_start.elapsed().as_secs_f64() / calls as f64;
        let budget = self.criterion.measurement_time.as_secs_f64();
        let iters_per_sample =
            ((budget / samples as f64 / per_call.max(1e-9)).floor() as u64).max(1);

        let mut sample_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut elapsed = Duration::ZERO;
            let mut iters = 0u64;
            while iters < iters_per_sample {
                let mut b = Bencher {
                    elapsed: Duration::ZERO,
                    iters: 0,
                };
                f(&mut b);
                elapsed += b.elapsed;
                iters += b.iters.max(1);
            }
            sample_ns.push(elapsed.as_nanos() as f64 / iters as f64);
        }
        sample_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = sample_ns.first().copied().unwrap_or(0.0);
        let median = sample_ns[sample_ns.len() / 2];
        let mean = sample_ns.iter().sum::<f64>() / sample_ns.len() as f64;
        println!(
            "bench {label:<50} min {:>12}  median {:>12}  mean {:>12}  ({samples} samples x {iters_per_sample} iters)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(3);
        let mut runs = 0u64;
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            runs += 1;
        });
        g.finish();
        assert!(runs > 0);
    }
}
