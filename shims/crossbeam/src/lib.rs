//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of crossbeam it actually uses: an unbounded MPMC
//! channel with cloneable senders and receivers and disconnect-on-last-
//! sender-drop semantics. The surface mirrors `crossbeam_channel` exactly
//! so swapping the real crate back in is a one-line manifest change.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// The sending half of an unbounded channel. Cloning registers another
    /// sender; the channel disconnects when the last one drops.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half. Cloneable: every receiver drains the same queue
    /// (MPMC work-stealing, which is how the executor uses it).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake every blocked receiver so it can
                // observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender has dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).unwrap();
            }
        }

        /// Non-blocking pop, `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.pop_front().ok_or(RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn disconnects_when_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(7).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = channel::unbounded::<usize>();
        let n = 1000;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..n {
                        tx.send(i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got = 0usize;
            let counters: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || {
                        let mut c = 0usize;
                        while rx.recv().is_ok() {
                            c += 1;
                        }
                        c
                    })
                })
                .collect();
            for c in counters {
                got += c.join().unwrap();
            }
            assert_eq!(got, 4 * n);
        });
    }
}
