//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this vendors the
//! subset of the proptest API the workspace's property tests use:
//!
//! * the `proptest!` macro (with `#![proptest_config(...)]`),
//! * [`Strategy`] with `prop_map`/`boxed`, integer ranges, tuples,
//!   [`Just`], `prop_oneof!` (weighted and unweighted),
//!   `prop::collection::{vec, btree_set}`, `any::<bool>()`,
//!   `any::<prop::sample::Index>()`,
//! * `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`.
//!
//! Semantics: each test runs `cases` deterministic pseudo-random cases
//! (seeded from the test's name, so failures reproduce across runs).
//! There is **no shrinking** — a failing case panics with the values'
//! `Debug` rendering left to the assertion message. That trades minimal
//! counterexamples for zero dependencies; the property tests here assert
//! against brute-force oracles whose failures are readable regardless.

pub mod test_runner {
    /// Deterministic xoshiro256++ generator used by the case runner.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Seeded from the test's name: deterministic across runs and
        /// independent across tests.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::seed_from_u64(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Runner configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: env_cases().unwrap_or(64),
            }
        }
    }

    impl ProptestConfig {
        /// Like real proptest, `PROPTEST_CASES` overrides any in-source
        /// count — CI uses it to trim expensive suites (e.g. under TSAN).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases: env_cases().unwrap_or(cases),
            }
        }
    }

    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of values of one type. Unlike real proptest there is no
    /// value tree: `generate` draws a fresh sample (no shrinking).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy (`prop_oneof!` arms).
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `strategy.prop_map(f)`.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice among type-erased strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as $u as u64;
                    let off = rng.below(span) as $u;
                    self.start.wrapping_add(off as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
    );

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Strategy for a primitive drawn uniformly from its whole domain
    /// (`any::<bool>()`, `any::<Index>()`).
    pub struct AnyOf<T>(pub(crate) PhantomData<T>);

    impl Strategy for AnyOf<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for AnyOf<crate::prop::sample::Index> {
        type Value = crate::prop::sample::Index;
        fn generate(&self, rng: &mut TestRng) -> crate::prop::sample::Index {
            crate::prop::sample::Index(rng.next_u64())
        }
    }
}

pub mod arbitrary {
    use crate::strategy::AnyOf;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary() -> AnyOf<Self>;
    }

    impl Arbitrary for bool {
        fn arbitrary() -> AnyOf<bool> {
            AnyOf(PhantomData)
        }
    }

    impl Arbitrary for crate::prop::sample::Index {
        fn arbitrary() -> AnyOf<Self> {
            AnyOf(PhantomData)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyOf<T> {
        T::arbitrary()
    }
}

pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::collections::BTreeSet;
        use std::ops::Range;

        /// Collection size: a half-open range or an exact count.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl SizeRange {
            fn pick(&self, rng: &mut TestRng) -> usize {
                self.lo + rng.below((self.hi - self.lo) as u64) as usize
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::btree_set(element, size)`. As in proptest,
        /// `size` counts *draws*; duplicates collapse, so the set can come
        /// out smaller.
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod sample {
        /// An index into a not-yet-known-length collection: resolved with
        /// [`Index::index`] against the live length at use time.
        #[derive(Copy, Clone, Debug, PartialEq, Eq)]
        pub struct Index(pub(crate) u64);

        impl Index {
            /// An index uniform in `[0, len)`. Panics if `len == 0`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                ((self.0 as u128 * len as u128) >> 64) as usize
            }
        }
    }
}

/// The assertion macros simply panic (no rejection bookkeeping): with no
/// shrinking there is nothing else to do with a failure.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// The test-defining macro: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller, exactly as
/// with real proptest) running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let ($($arg,)+) =
                    ($( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+);
                $body
            }
        }
        $crate::__proptest_items!{ ($config) $($rest)* }
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Kind {
        A(usize),
        B,
    }

    fn kind() -> impl Strategy<Value = Kind> {
        prop_oneof![
            3 => (0..10usize).prop_map(Kind::A),
            1 => Just(Kind::B),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn ranges_and_tuples_in_bounds(
            a in 0i64..50,
            pair in (10u32..20, -5i8..5),
        ) {
            prop_assert!((0..50).contains(&a));
            prop_assert!((10..20).contains(&pair.0));
            prop_assert!((-5..5).contains(&pair.1));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u8..4, 2..6),
            s in prop::collection::btree_set(0i64..100, 0..10),
            exact in prop::collection::vec(0u32..2, 3),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(s.len() < 10);
            prop_assert_eq!(exact.len(), 3);
        }

        #[test]
        fn oneof_weights_hit_all_arms(ks in prop::collection::vec(kind(), 64)) {
            // With weight 3:1 over 64 draws both arms appear with
            // overwhelming probability (checked deterministically: the seed
            // is fixed by the test name).
            prop_assert!(ks.iter().any(|k| matches!(k, Kind::A(_))));
            prop_assert!(ks.contains(&Kind::B));
        }

        #[test]
        fn index_resolves_in_bounds(idx in any::<prop::sample::Index>(), flag in any::<bool>()) {
            let len = if flag { 7 } else { 1 };
            prop_assert!(idx.index(len) < len);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        let mut c = crate::test_runner::TestRng::from_name("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
