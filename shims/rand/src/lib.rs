//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendors the
//! subset of the rand 0.10 API the workspace uses: `SeedableRng`,
//! `RngExt::random_range` over integer ranges, and `rngs::StdRng`. The RNG
//! is xoshiro256++ seeded through splitmix64 — deterministic across
//! platforms, which is all the benchmark generators require (they need
//! *reproducible* irregular graphs, not cryptographic quality).

use std::ops::Range;

/// A deterministic, seedable random number generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling helpers, mirroring rand 0.10's `Rng`/`RngExt`.
pub trait RngExt: RngCore {
    /// A uniform sample from `range` (half-open). Panics on empty ranges.
    fn random_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// A uniform `bool`.
    fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<R: RngCore> RngExt for R {}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleRange: Copy {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                // Multiply-shift rejection-free mapping (Lemire); the tiny
                // modulo bias is irrelevant for workload generation.
                let x = rng.next_u64();
                range.start + ((x as u128 * span as u128) >> 64) as $t
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.wrapping_sub(range.start) as $u as u64;
                let x = rng.next_u64();
                let off = ((x as u128 * span as u128) >> 64) as $u;
                range.start.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_sample_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via splitmix64 — the stand-in for rand's StdRng.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0u32..10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }
}
