//! # visibility
//!
//! A Rust reproduction of *"Visibility Algorithms for Dynamic Dependence
//! Analysis and Distributed Coherence"* (Bauer, Slaughter, Treichler, Lee,
//! Garland, Aiken — PPoPP 2023): an implicitly-parallel, Legion-style task
//! runtime whose dependence analysis and content-based coherence are solved
//! by three visibility algorithms adapted from computer graphics — the
//! painter's algorithm, Warnock's algorithm, and ray casting.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`geometry`] — index spaces, rectangles, set algebra, BVH, K-d tree;
//! * [`region`] — region trees, partitions, privileges, reduction ops;
//! * [`sim`] — the simulated distributed machine and cost model;
//! * [`runtime`] — the task runtime and the visibility engines;
//! * [`apps`] — the paper's three benchmark applications;
//! * [`profile`] — the structured tracing & metrics recorder
//!   (Chrome-trace / flamegraph / TSV exporters).
//!
//! ## Quickstart
//!
//! ```
//! use visibility::prelude::*;
//!
//! // A runtime with the ray-casting engine (the paper's winner, §8).
//! // `.pipeline(true)` would overlap the dependence analysis with
//! // submission on a driver thread — the results are identical.
//! let mut rt = Runtime::single_node(EngineKind::RayCast);
//!
//! // A collection of 100 elements with one field, split into 4 pieces.
//! let data = rt.forest_mut().create_root_1d("data", 100);
//! let val = rt.forest_mut().add_field(data, "value");
//! let pieces = rt.forest_mut().create_equal_partition_1d(data, "P", 4);
//!
//! // Four tasks write their (disjoint) pieces — these run in parallel.
//! for i in 0..4 {
//!     let piece = rt.forest().subregion(pieces, i);
//!     rt.task("fill")
//!         .write(piece, val)
//!         .body(|rs: &mut [PhysicalRegion]| {
//!             rs[0].update_all(|p, _| p.x as f64 * 2.0);
//!         })
//!         .submit()
//!         .expect("valid launch");
//! }
//!
//! // A read of the whole collection depends on all four writers; the
//! // engine assembles its value from their outputs.
//! let probe = rt.inline_read(data, val).unwrap();
//! assert_eq!(rt.dag().preds(probe).len(), 4);
//!
//! let store = rt.execute_values();
//! assert_eq!(store.inline(probe).get(viz_geometry::Point::p1(42)), 84.0);
//! ```

pub use viz_apps as apps;
pub use viz_array as array;
pub use viz_geometry as geometry;
pub use viz_profile as profile;
pub use viz_region as region;
pub use viz_runtime as runtime;
pub use viz_sim as sim;

/// The commonly-used names, in one import.
pub mod prelude {
    pub use viz_apps::{
        Circuit, CircuitConfig, Pennant, PennantConfig, Stencil, StencilConfig, Workload,
    };
    pub use viz_array::{ArrayProbe, DistArray, Scalar};
    pub use viz_geometry::{IndexSpace, Point, Rect};
    pub use viz_region::{Privilege, RedOpRegistry, RegionForest};
    pub use viz_runtime::{
        EngineKind, LaunchSpec, PhysicalRegion, RegionRequirement, Runtime, RuntimeConfig,
        RuntimeError, TaskHandle, TaskId,
    };
    pub use viz_sim::{CostModel, Machine};
}
