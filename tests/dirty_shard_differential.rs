//! Dirty-shard scanning must be *observationally invisible*: a GC'd run
//! that sweeps only the shards touched since the last collection (plus the
//! periodic full sweep, `analysis::FULL_SWEEP_PERIOD`) must produce
//! byte-identical dependences, materialization plans, launch records, and
//! simulated machine counters to the same run sweeping every shard every
//! time. Checked across all four engines × serial/sharded analysis ×
//! pipelined submission × auto-tracing.
//!
//! What is deliberately *not* compared: engine state sizes. Dirty-only
//! sweeps may defer reclaiming dead state on idle shards until the next
//! full sweep, so `stats().state` can legitimately lag — the contract is
//! about observable behavior, not reclamation latency.

use visibility::apps::{Circuit, CircuitConfig, Stencil, StencilConfig, Workload};
use visibility::prelude::*;
use visibility::runtime::AnalysisResult;
use visibility::sim::Counters;

/// The submission/analysis shapes the differential covers.
#[derive(Copy, Clone, Debug)]
enum Mode {
    Serial,
    Sharded,
    Pipelined,
    AutoTraced,
}

const MODES: [Mode; 4] = [
    Mode::Serial,
    Mode::Sharded,
    Mode::Pipelined,
    Mode::AutoTraced,
];

fn configure(engine: EngineKind, mode: Mode, nodes: usize) -> RuntimeConfig {
    let cfg = RuntimeConfig::new(engine).nodes(nodes).validate(false);
    match mode {
        Mode::Serial => cfg.analysis_threads(1),
        Mode::Sharded => cfg.analysis_threads(4),
        Mode::Pipelined => cfg.analysis_threads(1).pipeline(true),
        Mode::AutoTraced => cfg.analysis_threads(1).auto_trace(true),
    }
}

struct Observed {
    tasks: usize,
    watermark: u32,
    results: Vec<AnalysisResult>,
    names: Vec<String>,
    counters: Counters,
}

fn run(
    workload: &dyn Workload,
    engine: EngineKind,
    mode: Mode,
    nodes: usize,
    dirty: bool,
) -> Observed {
    let mut rt = Runtime::new(
        configure(engine, mode, nodes)
            // GC on with an aggressive cadence so many sweeps land inside a
            // small program — including several dirty-only ones between the
            // periodic full sweeps.
            .history_gc(true)
            .gc_interval(16)
            .gc_retain(24)
            .dirty_shards(dirty),
    );
    workload.execute(&mut rt);
    let stats = rt.stats();
    let names = rt.launches().iter().map(|l| l.name.clone()).collect();
    let counters = rt.machine().counters().clone();
    Observed {
        tasks: rt.num_tasks(),
        watermark: stats.watermark,
        results: rt.results(),
        names,
        counters,
    }
}

fn differential(workload: &dyn Workload, nodes: usize) {
    for engine in EngineKind::all() {
        for mode in MODES {
            let full = run(workload, engine, mode, nodes, false);
            let dirty = run(workload, engine, mode, nodes, true);
            let ctx = format!("{} {engine:?} {mode:?}", workload.name());

            assert_eq!(dirty.tasks, full.tasks, "{ctx}: program length diverged");
            assert!(
                full.watermark > 0,
                "{ctx}: GC never fired — the differential tested nothing \
                 (tasks={}, interval=16)",
                full.tasks
            );
            assert_eq!(
                dirty.watermark, full.watermark,
                "{ctx}: retirement watermark diverged"
            );
            assert_eq!(
                dirty.results, full.results,
                "{ctx}: retained analysis results diverged from the full-sweep run"
            );
            assert_eq!(
                dirty.names, full.names,
                "{ctx}: retained launch records diverged"
            );
            assert_eq!(
                dirty.counters, full.counters,
                "{ctx}: simulated machine observed a different operation stream"
            );
        }
    }
}

#[test]
fn stencil_dirty_and_full_sweeps_agree() {
    let app = Stencil::new(StencilConfig {
        nodes: 4,
        iterations: 8,
        ..StencilConfig::small(4, 6, 2)
    });
    differential(&app, 4);
}

#[test]
fn circuit_dirty_and_full_sweeps_agree() {
    let app = Circuit::new(CircuitConfig {
        nodes: 4,
        iterations: 8,
        ..CircuitConfig::small(4, 2)
    });
    differential(&app, 4);
}

/// Traces and fences interleaved with dirty-only sweeps: replayed launches
/// resolve through templates that must survive retirement regardless of
/// which shards the sweep visited.
#[test]
fn traced_stencil_dirty_and_full_sweeps_agree() {
    let app = Stencil::new(StencilConfig {
        nodes: 2,
        iterations: 10,
        traced: true,
        ..StencilConfig::small(4, 6, 2)
    });
    differential(&app, 2);
}
