//! Integration tests for the *dynamic* aspects the paper's introduction
//! calls essential: regions computed at runtime, partitions created
//! mid-stream, data-dependent control flow, and multiple region trees.

// Deprecated-wrapper allowlist (PR 4): still exercises `launch`/`run_batch`/
// `set_initial`/`begin_trace`; migrate to `submit` and the `try_*` forms in PR 5.
use std::sync::Arc;
use visibility::prelude::*;
use visibility::runtime::validate::check_sufficiency;

/// Partitions may be created *between* launches — the analyses are fully
/// dynamic and must pick up new names for already-written data.
#[test]
fn partitions_created_mid_stream() {
    for engine in EngineKind::all() {
        let mut rt = Runtime::single_node(engine);
        let root = rt.forest_mut().create_root_1d("A", 64);
        let f = rt.forest_mut().add_field(root, "v");
        // Write through the root first.
        rt.submit(LaunchSpec::new(
            "fill",
            0,
            vec![RegionRequirement::read_write(root, f)],
            0,
            Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                rs[0].update_all(|p, _| p.x as f64);
            })),
        ))
        .unwrap()
        .id();
        // Only now create a partition and read through it: the reads must
        // see the root write.
        let p = rt.forest_mut().create_equal_partition_1d(root, "P", 4);
        for i in 0..4 {
            let piece = rt.forest().subregion(p, i);
            let r = rt
                .submit(LaunchSpec::new(
                    "read",
                    0,
                    vec![RegionRequirement::read(piece, f)],
                    0,
                    None,
                ))
                .unwrap()
                .id();
            assert_eq!(rt.dag().preds(r), &[TaskId(0)], "{engine:?}");
        }
        // And a second, *different* partition created even later.
        let q = rt.forest_mut().create_partition(
            root,
            "Q",
            vec![IndexSpace::span(10, 40), IndexSpace::span(41, 50)],
        );
        let q0 = rt.forest().subregion(q, 0);
        let w = rt
            .submit(LaunchSpec::new(
                "rewrite",
                0,
                vec![RegionRequirement::read_write(q0, f)],
                0,
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|_, v| v + 1000.0);
                })),
            ))
            .unwrap()
            .id();
        // The rewrite interferes with the root write and the overlapping
        // piece reads (write-after-read).
        let dag = rt.dag();
        let deps = dag.preds(w);
        assert!(deps.contains(&TaskId(0)), "{engine:?}");
        assert!(deps.len() >= 3, "{engine:?}: {deps:?}");
        drop(dag);
        let probe = rt.inline_read(root, f).unwrap();
        assert!(check_sufficiency(rt.forest(), rt.launches(), rt.dag()).is_empty());
        let store = rt.execute_values();
        let vals = store.inline(probe);
        assert_eq!(vals.get(Point::p1(5)), 5.0);
        assert_eq!(vals.get(Point::p1(25)), 1025.0);
        assert_eq!(vals.get(Point::p1(60)), 60.0);
    }
}

/// Data-dependent control flow: the next launch depends on a value read
/// back from the runtime (the while-(*) loop of Fig 1).
#[test]
fn data_dependent_control_flow() {
    for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
        let mut rt = Runtime::single_node(engine);
        let root = rt.forest_mut().create_root_1d("A", 8);
        let f = rt.forest_mut().add_field(root, "v");
        rt.try_set_initial(root, f, |_| 1.0).unwrap();
        // Keep doubling until the (sequentially-semantic) value crosses a
        // threshold; the number of launches is decided by the data.
        let mut launches = 0;
        loop {
            rt.submit(LaunchSpec::new(
                "double",
                0,
                vec![RegionRequirement::read_write(root, f)],
                0,
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|_, v| v * 2.0);
                })),
            ))
            .unwrap()
            .id();
            launches += 1;
            let probe = rt.inline_read(root, f).unwrap();
            let store = rt.execute_values();
            if store.inline(probe).get(Point::p1(0)) >= 16.0 {
                break;
            }
        }
        assert_eq!(launches, 4, "{engine:?}: 1→2→4→8→16");
    }
}

/// Multiple independent region trees: analysis state is per tree; tasks on
/// different trees never interfere.
#[test]
fn multiple_region_trees_are_independent() {
    for engine in EngineKind::all() {
        let mut rt = Runtime::single_node(engine);
        let a = rt.forest_mut().create_root_1d("A", 16);
        let fa = rt.forest_mut().add_field(a, "v");
        let b = rt.forest_mut().create_root_1d("B", 16);
        let fb = rt.forest_mut().add_field(b, "v");
        rt.submit(LaunchSpec::new(
            "wa",
            0,
            vec![RegionRequirement::read_write(a, fa)],
            0,
            None,
        ))
        .unwrap()
        .id();
        let t = rt
            .submit(LaunchSpec::new(
                "wb",
                0,
                vec![RegionRequirement::read_write(b, fb)],
                0,
                None,
            ))
            .unwrap()
            .id();
        assert!(
            rt.dag().preds(t).is_empty(),
            "{engine:?}: different trees must not interfere"
        );
        // But a task spanning both trees orders against both writers.
        let t2 = rt
            .submit(LaunchSpec::new(
                "both",
                0,
                vec![
                    RegionRequirement::read(a, fa),
                    RegionRequirement::read(b, fb),
                ],
                0,
                None,
            ))
            .unwrap()
            .id();
        assert_eq!(rt.dag().preds(t2).len(), 2, "{engine:?}");
    }
}

/// Nested partitions: a task naming a grandchild region must order against
/// tasks that touched its ancestors and vice versa.
#[test]
fn nested_partition_interference() {
    for engine in EngineKind::all() {
        let mut rt = Runtime::single_node(engine);
        let root = rt.forest_mut().create_root_1d("A", 64);
        let f = rt.forest_mut().add_field(root, "v");
        let p = rt.forest_mut().create_equal_partition_1d(root, "P", 4);
        let p0 = rt.forest().subregion(p, 0);
        let q = rt.forest_mut().create_equal_partition_1d(p0, "Q", 4);
        let q2 = rt.forest().subregion(q, 2); // elements [8, 11]

        let w = rt
            .submit(LaunchSpec::new(
                "deep",
                0,
                vec![RegionRequirement::read_write(q2, f)],
                0,
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|_, _| 7.0);
                })),
            ))
            .unwrap()
            .id();
        assert!(rt.dag().preds(w).is_empty());
        // Sibling grandchild: disjoint, parallel.
        let q3 = rt.forest().subregion(q, 3);
        let s = rt
            .submit(LaunchSpec::new(
                "sib",
                0,
                vec![RegionRequirement::read_write(q3, f)],
                0,
                None,
            ))
            .unwrap()
            .id();
        assert!(rt.dag().preds(s).is_empty(), "{engine:?}");
        // Reading the *root* depends on both grandchildren.
        let r = rt
            .submit(LaunchSpec::new(
                "top",
                0,
                vec![RegionRequirement::read(root, f)],
                0,
                None,
            ))
            .unwrap()
            .id();
        assert_eq!(rt.dag().preds(r), &[w, s], "{engine:?}");
        // And writing P[1] (disjoint from Q's subtree) stays parallel with
        // the grandchildren but orders after the root read.
        let p1 = rt.forest().subregion(p, 1);
        let w2 = rt
            .submit(LaunchSpec::new(
                "p1",
                0,
                vec![RegionRequirement::read_write(p1, f)],
                0,
                None,
            ))
            .unwrap()
            .id();
        assert_eq!(rt.dag().preds(w2), &[r], "{engine:?} (war on the read)");
        assert!(check_sufficiency(rt.forest(), rt.launches(), rt.dag()).is_empty());
    }
}

/// Sparse, highly irregular regions (scattered points) through every
/// engine — the content-based coherence case.
#[test]
fn sparse_scattered_regions() {
    for engine in EngineKind::all() {
        let mut rt = Runtime::single_node(engine);
        let root = rt.forest_mut().create_root_1d("A", 100);
        let f = rt.forest_mut().add_field(root, "v");
        rt.try_set_initial(root, f, |p| p.x as f64).unwrap();
        let evens = rt.forest_mut().create_partition_with_flags(
            root,
            "evens",
            vec![IndexSpace::from_points((0..50).map(|i| Point::p1(i * 2)))],
            true,
            false,
        );
        let threes = rt.forest_mut().create_partition_with_flags(
            root,
            "threes",
            vec![IndexSpace::from_points((0..34).map(|i| Point::p1(i * 3)))],
            true,
            false,
        );
        let e = rt.forest().subregion(evens, 0);
        let t3 = rt.forest().subregion(threes, 0);
        let w = rt
            .submit(LaunchSpec::new(
                "evens+1",
                0,
                vec![RegionRequirement::read_write(e, f)],
                0,
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|_, v| v + 1.0);
                })),
            ))
            .unwrap()
            .id();
        let r = rt
            .submit(LaunchSpec::new(
                "read3",
                0,
                vec![RegionRequirement::read(t3, f)],
                0,
                None,
            ))
            .unwrap()
            .id();
        assert_eq!(
            rt.dag().preds(r),
            &[w],
            "{engine:?}: multiples of 6 are shared"
        );
        let probe = rt.inline_read(root, f).unwrap();
        let store = rt.execute_values();
        let vals = store.inline(probe);
        assert_eq!(vals.get(Point::p1(6)), 7.0);
        assert_eq!(vals.get(Point::p1(9)), 9.0);
        assert_eq!(vals.get(Point::p1(4)), 5.0);
    }
}
