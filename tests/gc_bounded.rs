//! The tentpole's memory claim, as a test: with history GC on, the
//! retained ledger window, the DAG's tag storage, and the engines' dead
//! state are bounded by the *retain window*, not by program length — and
//! the watermark actually advances. Also covers the coarsening
//! cost/benefit counters and the eager-execution guards.

use visibility::apps::{Circuit, CircuitConfig, Stencil, StencilConfig, Workload};
use visibility::prelude::*;

fn long_stencil(iterations: usize) -> Stencil {
    Stencil::new(StencilConfig {
        nodes: 4,
        iterations,
        ..StencilConfig::small(4, 6, 2)
    })
}

fn long_circuit(iterations: usize) -> Circuit {
    Circuit::new(CircuitConfig {
        nodes: 4,
        iterations,
        ..CircuitConfig::small(4, 2)
    })
}

#[test]
fn retained_window_is_bounded_by_retain_not_program_length() {
    for engine in EngineKind::all() {
        let mut short_retained = 0;
        for iterations in [10usize, 40] {
            let mut rt = Runtime::new(
                RuntimeConfig::new(engine)
                    .nodes(4)
                    .validate(false)
                    .history_gc(true)
                    .gc_interval(16)
                    .gc_retain(32),
            );
            long_stencil(iterations).execute(&mut rt);
            let stats = rt.stats();
            assert!(stats.gc.collections > 0, "{engine:?}: GC never ran");
            assert!(stats.watermark > 0, "{engine:?}: watermark never advanced");
            assert_eq!(
                stats.retained as u32 + stats.watermark,
                stats.tasks as u32,
                "{engine:?}: ledger accounting broke"
            );
            // Retained window ≤ retain + one GC interval's slack (sweeps
            // are amortized: at most `interval` launches land between the
            // watermark moving and the next sweep).
            assert!(
                stats.retained <= 32 + 16,
                "{engine:?} iters={iterations}: retained {} outgrew the window",
                stats.retained
            );
            if iterations == 10 {
                short_retained = stats.retained;
            } else {
                // 4× the program, same retained ceiling: memory tracks the
                // window, not program length.
                assert!(
                    stats.retained <= short_retained + 16 + 32,
                    "{engine:?}: retained grew with program length \
                     ({short_retained} -> {})",
                    stats.retained
                );
            }
        }
    }
}

#[test]
fn tag_words_are_bounded_by_the_window() {
    // GC-off: tag memory grows with program length (within the tag
    // window). GC-on: it tracks the retained suffix.
    let mut off = Runtime::new(
        RuntimeConfig::new(EngineKind::RayCast)
            .nodes(4)
            .validate(false),
    );
    long_stencil(40).execute(&mut off);
    let off_words = off.stats().dag.tag_words;

    let mut on = Runtime::new(
        RuntimeConfig::new(EngineKind::RayCast)
            .nodes(4)
            .validate(false)
            .history_gc(true)
            .gc_interval(16)
            .gc_retain(32),
    );
    long_stencil(40).execute(&mut on);
    let stats = on.stats();
    assert!(stats.gc.tag_words_freed > 0, "no tag rows were ever freed");
    assert!(
        stats.dag.tag_words * 4 < off_words,
        "tag words with GC ({}) not clearly below GC-off ({off_words})",
        stats.dag.tag_words
    );
    assert_eq!(stats.dag.retired_floor, stats.watermark);
}

#[test]
fn engine_sweeps_reclaim_dead_state() {
    // Circuit exercises every engine's sweep path: RayCast reclaims
    // dominated sets and their histories, Warnock (with coarsening) folds
    // re-converged siblings, Paint prunes replicated-cache pairs and
    // spatial-index nodes, and the naive painter drops union-occluded
    // history entries its commit-time prune cannot see.
    for engine in EngineKind::all() {
        let mut rt = Runtime::new(
            RuntimeConfig::new(engine)
                .nodes(4)
                .validate(false)
                .history_gc(true)
                .gc_interval(16)
                .gc_retain(32)
                .coarsen(engine == EngineKind::Warnock),
        );
        long_circuit(40).execute(&mut rt);
        let gc = rt.stats().gc;
        let dropped = gc.history_entries
            + gc.equivalence_sets
            + gc.composite_views
            + gc.index_nodes
            + gc.memo_entries;
        assert!(
            dropped > 0,
            "{engine:?}: {} sweeps reclaimed nothing",
            gc.collections
        );
    }
}

#[test]
fn coarsening_merges_reconverged_siblings_and_reports_cost() {
    // Circuit's whole-region phases re-converge Warnock's per-piece
    // refinements each iteration; coarsening must fold the siblings back
    // up and count the merges. (Stencil never re-converges: its pieces
    // keep distinct owners forever, which is why it is absent here.)
    let mut rt = Runtime::new(
        RuntimeConfig::new(EngineKind::Warnock)
            .nodes(4)
            .validate(false)
            .history_gc(true)
            .gc_interval(8)
            .gc_retain(16)
            .coarsen(true),
    );
    let app = long_circuit(30);
    app.execute(&mut rt);
    let gc = rt.stats().gc;
    assert!(gc.coarsen, "knob not reflected in stats");
    assert!(
        gc.coarsen_merges > 0,
        "no sibling sets re-converged across 30 whole-region iterations"
    );
    // Benefit measurement: merges must actually shrink the tree.
    assert!(gc.equivalence_sets > 0 || gc.index_nodes > 0);

    // Coarsening alone (GC off) also works: it only merges live state.
    let mut rt2 = Runtime::new(
        RuntimeConfig::new(EngineKind::Warnock)
            .nodes(4)
            .validate(false)
            .gc_interval(8)
            .coarsen(true),
    );
    app.execute(&mut rt2);
    let stats2 = rt2.stats();
    assert_eq!(stats2.watermark, 0, "GC off must not retire");
    assert!(stats2.gc.coarsen_merges > 0);
}

#[test]
fn retired_history_refuses_eager_execution() {
    // `execute_values`/`timed_schedule` need the full launch history; once
    // GC has retired a prefix they must fail loudly, not replay garbage.
    let mut rt = Runtime::new(
        RuntimeConfig::new(EngineKind::RayCast)
            .nodes(2)
            .validate(false)
            .history_gc(true)
            .gc_interval(8)
            .gc_retain(8),
    );
    long_stencil(20).execute(&mut rt);
    assert!(rt.stats().watermark > 0);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.execute_values();
    }));
    assert!(
        err.is_err(),
        "execute_values silently ran on retired history"
    );
}
