//! History GC must be *observationally invisible*: with GC on, every
//! launch still retained (ids at or above the watermark) must carry
//! byte-identical dependences and materialization plans to the same run
//! with GC off, and the simulated machine must observe the exact same
//! operation stream. Checked across all four engines × serial/sharded
//! analysis × pipelined submission × auto-tracing.
//!
//! Coarsening (`VIZ_GC_COARSEN`) is deliberately *not* in this matrix: it
//! preserves dependences and plan coverage but coalesces plan ranges over
//! merged sets, so it is excluded from the byte-differential by contract
//! (see `GcConfig::coarsen`).

use visibility::apps::{Circuit, CircuitConfig, Stencil, StencilConfig, Workload};
use visibility::prelude::*;
use visibility::runtime::AnalysisResult;
use visibility::sim::Counters;

/// The submission/analysis shapes the differential covers.
#[derive(Copy, Clone, Debug)]
enum Mode {
    Serial,
    Sharded,
    Pipelined,
    AutoTraced,
}

const MODES: [Mode; 4] = [
    Mode::Serial,
    Mode::Sharded,
    Mode::Pipelined,
    Mode::AutoTraced,
];

fn configure(engine: EngineKind, mode: Mode, nodes: usize) -> RuntimeConfig {
    let cfg = RuntimeConfig::new(engine).nodes(nodes).validate(false);
    match mode {
        Mode::Serial => cfg.analysis_threads(1),
        Mode::Sharded => cfg.analysis_threads(4),
        Mode::Pipelined => cfg.analysis_threads(1).pipeline(true),
        Mode::AutoTraced => cfg.analysis_threads(1).auto_trace(true),
    }
}

struct Observed {
    tasks: usize,
    watermark: u32,
    /// Results of the retained suffix `[watermark..tasks)`.
    results: Vec<AnalysisResult>,
    names: Vec<String>,
    counters: Counters,
}

fn run(
    workload: &dyn Workload,
    engine: EngineKind,
    mode: Mode,
    nodes: usize,
    gc: bool,
) -> Observed {
    let mut rt = Runtime::new(
        configure(engine, mode, nodes)
            .history_gc(gc)
            // Aggressive cadence so several sweeps land inside a small
            // program; a retain window big enough to keep suffixes
            // comparable but far smaller than the program.
            .gc_interval(16)
            .gc_retain(24),
    );
    workload.execute(&mut rt);
    let stats = rt.stats();
    let names = rt.launches().iter().map(|l| l.name.clone()).collect();
    let counters = rt.machine().counters().clone();
    Observed {
        tasks: rt.num_tasks(),
        watermark: stats.watermark,
        results: rt.results(),
        names,
        counters,
    }
}

fn differential(workload: &dyn Workload, nodes: usize) {
    for engine in EngineKind::all() {
        for mode in MODES {
            let off = run(workload, engine, mode, nodes, false);
            let on = run(workload, engine, mode, nodes, true);
            let ctx = format!("{} {engine:?} {mode:?}", workload.name());

            assert_eq!(off.watermark, 0, "{ctx}: GC-off run must retire nothing");
            assert_eq!(on.tasks, off.tasks, "{ctx}: program length diverged");
            assert!(
                on.watermark > 0,
                "{ctx}: GC never fired — the differential tested nothing \
                 (tasks={}, interval=16)",
                on.tasks
            );
            let w = on.watermark as usize;
            assert!(w <= off.tasks, "{ctx}: watermark past the end");
            assert_eq!(
                on.results,
                off.results[w..],
                "{ctx}: retained analysis results diverged from the GC-off run"
            );
            assert_eq!(
                on.names,
                off.names[w..],
                "{ctx}: retained launch records diverged"
            );
            // PaintNaive is the one engine whose cost model *charges* for
            // scanning occluded entries (§5.1's pathology); its GC sweep
            // reclaims union-occluded entries the commit-time prune cannot,
            // so its simulated scan cost legitimately drops while deps and
            // plans stay identical. Every other engine's sweep only removes
            // state the scans already never visit.
            if engine != EngineKind::PaintNaive {
                assert_eq!(
                    on.counters, off.counters,
                    "{ctx}: simulated machine observed a different operation stream"
                );
            }
        }
    }
}

#[test]
fn stencil_gc_on_off_agree() {
    let app = Stencil::new(StencilConfig {
        nodes: 4,
        iterations: 8,
        ..StencilConfig::small(4, 6, 2)
    });
    differential(&app, 4);
}

#[test]
fn circuit_gc_on_off_agree() {
    let app = Circuit::new(CircuitConfig {
        nodes: 4,
        iterations: 8,
        ..CircuitConfig::small(4, 2)
    });
    differential(&app, 4);
}

/// Fences and manual traces interleaved with GC sweeps: the fence path
/// goes through the same commit pipeline, and replayed launches resolve
/// through templates that must survive retirement (tracing-aware pinning).
#[test]
fn traced_stencil_with_fences_gc_on_off_agree() {
    let app = Stencil::new(StencilConfig {
        nodes: 2,
        iterations: 10,
        traced: true,
        ..StencilConfig::small(4, 6, 2)
    });
    differential(&app, 2);
}
