//! Cross-crate integration test: the paper's running example (Figs 1, 2, 5)
//! driven through the facade crate, checked against §3.2's stated
//! dependences under every engine, in value and timed modes.

// Deprecated-wrapper allowlist (PR 4): still exercises `launch`/`run_batch`/
// `set_initial`/`begin_trace`; migrate to `submit` and the `try_*` forms in PR 5.
use std::sync::Arc;
use visibility::prelude::*;
use visibility::runtime::validate::{check_sufficiency, count_interfering_pairs};

struct Example {
    rt: Runtime,
    n: visibility::region::RegionId,
    p: visibility::region::PartitionId,
    g: visibility::region::PartitionId,
    up: visibility::region::FieldId,
}

/// Fig 2's region tree (single field `up` suffices for the §3.2 check).
fn build(engine: EngineKind, nodes: usize, dcr: bool) -> Example {
    let mut rt = Runtime::new(RuntimeConfig::new(engine).nodes(nodes).dcr(dcr));
    let n = rt.forest_mut().create_root_1d("N", 30);
    let up = rt.forest_mut().add_field(n, "up");
    let p = rt.forest_mut().create_equal_partition_1d(n, "P", 3);
    let g = rt.forest_mut().create_partition(
        n,
        "G",
        vec![
            IndexSpace::from_points([10, 11, 20].map(Point::p1)),
            IndexSpace::from_points([8, 9, 20, 21].map(Point::p1)),
            IndexSpace::from_points([9, 18, 19].map(Point::p1)),
        ],
    );
    Example { rt, n, p, g, up }
}

/// Launch the Fig 5 stream on the `up` field: t0-2 write P[i].up, t3-5
/// reduce G[i].up, t6-8 write P[i].up again.
fn launch_fig5(ex: &mut Example) {
    for i in 0..3 {
        let piece = ex.rt.forest().subregion(ex.p, i);
        ex.rt
            .submit(LaunchSpec::new(
                "t1",
                i,
                vec![RegionRequirement::read_write(piece, ex.up)],
                1000,
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|pt, v| v + pt.x as f64);
                })),
            ))
            .unwrap()
            .id();
    }
    for i in 0..3 {
        let ghost = ex.rt.forest().subregion(ex.g, i);
        ex.rt
            .submit(LaunchSpec::new(
                "t2",
                i,
                vec![RegionRequirement::reduce(ghost, ex.up, RedOpRegistry::SUM)],
                1000,
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    let dom = rs[0].domain().clone();
                    for pt in dom.points() {
                        rs[0].reduce(pt, 100.0);
                    }
                })),
            ))
            .unwrap()
            .id();
    }
    for i in 0..3 {
        let piece = ex.rt.forest().subregion(ex.p, i);
        ex.rt
            .submit(LaunchSpec::new(
                "t1",
                i,
                vec![RegionRequirement::read_write(piece, ex.up)],
                1000,
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|_, v| v * 2.0);
                })),
            ))
            .unwrap()
            .id();
    }
}

#[test]
fn fig5_dependences_match_section_3_2() {
    for engine in EngineKind::all() {
        let mut ex = build(engine, 1, false);
        launch_fig5(&mut ex);
        let dag = ex.rt.dag();
        // "the system will discover that there are no dependences between
        // tasks t0−2" — wave one is parallel.
        for t in 0..3u32 {
            assert!(dag.preds(TaskId(t)).is_empty(), "{engine:?}: t{t}");
        }
        // "t3 has dependences on t0, t1, and t2" — on the tasks whose
        // pieces its ghost region overlaps (t0's piece P[0] does not
        // overlap G[0] = {10,11,20}; the paper states the conservative
        // closure, our engines find the precise subset — check soundness
        // plus the exact sets).
        assert_eq!(dag.preds(TaskId(3)), &[TaskId(1), TaskId(2)], "{engine:?}");
        assert_eq!(dag.preds(TaskId(4)), &[TaskId(0), TaskId(2)], "{engine:?}");
        assert_eq!(dag.preds(TaskId(5)), &[TaskId(0), TaskId(1)], "{engine:?}");
        // "t6 has a dependence on tasks t3, t4, and t5" — the reducers
        // overlapping P[0], plus the write it replaces (t0).
        assert_eq!(
            dag.preds(TaskId(6)),
            &[TaskId(0), TaskId(4), TaskId(5)],
            "{engine:?}"
        );
        // The three waves of Fig 5 can run in parallel groups.
        let waves = dag.waves();
        assert_eq!(
            waves.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![3, 3, 3],
            "{engine:?}"
        );
        // And the whole relation is sound against brute force.
        assert!(check_sufficiency(ex.rt.forest(), ex.rt.launches(), dag).is_empty());
        // 6 write/reduce pairs across waves 1→2, 3 write/write pairs 1→3,
        // and 6 reduce/write pairs 2→3.
        assert_eq!(
            count_interfering_pairs(ex.rt.forest(), ex.rt.launches()),
            15
        );
    }
}

#[test]
fn fig5_values_identical_across_engines_and_machines() {
    let mut reference: Option<Vec<f64>> = None;
    for engine in EngineKind::all() {
        for (nodes, dcr) in [(1, false), (3, false), (3, true)] {
            let mut ex = build(engine, nodes, dcr);
            launch_fig5(&mut ex);
            let probe = ex.rt.inline_read(ex.n, ex.up).unwrap();
            let store = ex.rt.execute_values();
            let vals: Vec<f64> = store.inline(probe).iter().map(|(_, v)| v).collect();
            match &reference {
                None => reference = Some(vals),
                Some(r) => assert_eq!(&vals, r, "{engine:?} nodes={nodes} dcr={dcr} diverged"),
            }
        }
    }
    // Spot-check the blending semantics (§3.1): node 20 = write(20) then
    // two +100 reductions (G[0], G[1]) then overwrite ×2 by t8.
    let r = reference.unwrap();
    assert_eq!(r[20], (20.0 + 200.0) * 2.0);
}

#[test]
fn timed_mode_schedules_three_waves() {
    let mut ex = build(EngineKind::RayCast, 3, true);
    launch_fig5(&mut ex);
    let report = ex.rt.timed_schedule();
    // Three dependent waves of 1µs tasks on three nodes: the makespan must
    // reflect at least three serialized task durations.
    assert!(report.makespan >= 3_000);
    // Tasks in the same wave overlap: makespan far below full serialization.
    assert!(report.makespan < 9 * 1_000 + 1_000_000);
}
