//! Property tests for the order-maintenance precedence tags (DESIGN.md §7i):
//! on random DAGs, the O(1) tag answer of `TaskDag::must_follow` must equal
//! the exact predecessor walk for **every** pair — across tag-window widths,
//! and across arbitrary interleavings of pushes with GC retirement.
//!
//! Release builds skip the DAG's internal debug cross-checks, so this suite
//! is the differential that runs everywhere `cargo test` does.

use proptest::prelude::*;
use visibility::runtime::{TaskDag, TaskId};

/// A compressed random program: task `i` depends on `preds[i]`, each a set
/// of earlier ids picked by index.
#[derive(Clone, Debug)]
struct RandomDag {
    /// For each task: (fan_in, pred_picks) — resolved against earlier ids.
    picks: Vec<Vec<prop::sample::Index>>,
}

fn random_dag(max_tasks: usize, max_fanin: usize) -> impl Strategy<Value = RandomDag> {
    prop::collection::vec(
        prop::collection::vec(any::<prop::sample::Index>(), 0..max_fanin + 1),
        1..max_tasks + 1,
    )
    .prop_map(|picks| RandomDag { picks })
}

/// Materialize the random program into a `TaskDag`, optionally retiring
/// tag rows below a moving floor every `retire_every` pushes.
fn build(dag: &RandomDag, window: u32, retire_every: Option<usize>) -> TaskDag {
    let mut out = TaskDag::with_window(window);
    for (i, picks) in dag.picks.iter().enumerate() {
        let mut deps: Vec<TaskId> = picks
            .iter()
            .filter(|_| i > 0)
            .map(|p| TaskId(p.index(i) as u32))
            .collect();
        deps.sort_unstable();
        deps.dedup();
        out.push(deps);
        if let Some(k) = retire_every {
            if i > 0 && i % k == 0 {
                // Keep roughly half the pushed ids tagged.
                out.retire_to(TaskId((i / 2) as u32));
            }
        }
    }
    out
}

/// Assert tags == walk on all O(n²) ordered pairs.
fn assert_tags_match_walk(dag: &TaskDag) {
    let n = dag.len() as u32;
    for t in 0..n {
        for anc in 0..n {
            let (t, anc) = (TaskId(t), TaskId(anc));
            assert_eq!(
                dag.must_follow(t, anc),
                dag.must_follow_walk(t, anc),
                "tag answer diverged from the walk oracle for ({t:?}, {anc:?})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Wide window: every pair should be answered by tags alone.
    #[test]
    fn tags_equal_walk_wide_window(dag in random_dag(120, 5)) {
        assert_tags_match_walk(&build(&dag, 4096, None));
    }

    /// Window narrower than the program: deep queries cross the row base
    /// and must fall back to the walk; near queries stay tagged. Both
    /// paths and their boundary must agree with the oracle.
    #[test]
    fn tags_equal_walk_narrow_window(dag in random_dag(200, 6)) {
        assert_tags_match_walk(&build(&dag, 64, None));
    }

    /// Retirement interleaved with pushes: rows freed below the floor and
    /// rows whose base was raised by it must still answer exactly.
    #[test]
    fn tags_equal_walk_with_retirement(
        dag in random_dag(160, 5),
        every in 8usize..40,
    ) {
        assert_tags_match_walk(&build(&dag, 128, Some(every)));
    }

    /// Depth tags define a valid schedule: every task's depth is strictly
    /// greater than each predecessor's, and `waves()` partitions by depth.
    #[test]
    fn depth_is_topological(dag in random_dag(120, 5)) {
        let dag = build(&dag, 256, None);
        let waves = dag.waves();
        let mut wave_of = vec![0usize; dag.len()];
        for (w, tasks) in waves.iter().enumerate() {
            for t in tasks {
                wave_of[t.index()] = w;
            }
        }
        for t in 0..dag.len() {
            for d in dag.preds(TaskId(t as u32)) {
                prop_assert!(
                    wave_of[d.index()] < wave_of[t],
                    "predecessor {d:?} not in an earlier wave than {t}"
                );
            }
        }
    }
}

/// Deterministic worst cases that proptest's generator is unlikely to hit.
#[test]
fn adversarial_shapes() {
    // Dense diamond lattice: every task depends on the previous two.
    let mut dag = TaskDag::with_window(64);
    dag.push(vec![]);
    dag.push(vec![TaskId(0)]);
    for i in 2..300u32 {
        dag.push(vec![TaskId(i - 2), TaskId(i - 1)]);
    }
    assert_tags_match_walk(&dag);

    // Star with a long-range spoke: deps reach arbitrarily far below the
    // window (regression shape for the out-of-range row union).
    let mut star = TaskDag::with_window(64);
    star.push(vec![]);
    star.push(vec![TaskId(0)]);
    for _ in 2..200u32 {
        star.push(vec![]);
    }
    star.push(vec![TaskId(1), TaskId(150)]);
    star.push(vec![TaskId(1)]);
    assert_tags_match_walk(&star);

    // Retire *everything*, then keep pushing: new rows start at the floor.
    let mut gc = TaskDag::with_window(128);
    gc.push(vec![]);
    for i in 1..100u32 {
        gc.push(vec![TaskId(i - 1)]);
    }
    gc.retire_to(TaskId(100));
    for i in 100..160u32 {
        gc.push(vec![TaskId(i - 1)]);
    }
    assert_tags_match_walk(&gc);
}
