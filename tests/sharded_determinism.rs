//! The sharded-analysis determinism gate: running the visibility analysis
//! on a multi-thread scoped worker pool must be **byte-identical** to the
//! serial driver — same dependences, same materialization plans, same
//! simulated clocks, counters, and makespans. The batched driver only
//! reorders *host* work (per-`(root, field)` scans run concurrently); the
//! pipelined commit stage replays every launch's recorded machine charges
//! in the exact order the serial driver would have issued them.

use visibility::apps::{
    Circuit, CircuitConfig, Pennant, PennantConfig, Stencil, StencilConfig, Workload,
};
use visibility::prelude::*;
use visibility::sim::SimTime;

fn run_one(
    workload: &dyn Workload,
    engine: EngineKind,
    nodes: usize,
    dcr: bool,
    threads: usize,
) -> Snapshot {
    let mut rt = Runtime::new(
        RuntimeConfig::new(engine)
            .nodes(nodes)
            .dcr(dcr)
            .analysis_threads(threads),
    );
    let run = workload.execute(&mut rt);
    let results: Vec<visibility::runtime::AnalysisResult> = rt.results();
    let analysis_done: Vec<SimTime> = (0..rt.num_tasks() as u32)
        .map(|t| rt.analysis_done(TaskId(t)))
        .collect();
    let clocks = rt.machine().clocks().to_vec();
    let service_clocks = rt.machine().service_clocks().to_vec();
    let counters = rt.machine().counters().clone();
    let state = rt.stats().state;
    let report = rt.timed_schedule();
    let makespan = report.completion_through(*run.iter_end.last().unwrap());
    Snapshot {
        results,
        analysis_done,
        clocks,
        service_clocks,
        counters,
        state,
        makespan,
    }
}

struct Snapshot {
    results: Vec<visibility::runtime::AnalysisResult>,
    analysis_done: Vec<SimTime>,
    clocks: Vec<SimTime>,
    service_clocks: Vec<SimTime>,
    counters: visibility::sim::Counters,
    state: visibility::runtime::engine::StateSize,
    makespan: SimTime,
}

fn assert_identical(workload: &dyn Workload, engine: EngineKind, nodes: usize, dcr: bool) {
    let serial = run_one(workload, engine, nodes, dcr, 1);
    let sharded = run_one(workload, engine, nodes, dcr, 4);
    let tag = format!("{} {engine:?} nodes={nodes} dcr={dcr}", workload.name());
    assert_eq!(
        serial.results.len(),
        sharded.results.len(),
        "{tag}: launch counts differ"
    );
    for (t, (a, b)) in serial.results.iter().zip(&sharded.results).enumerate() {
        assert_eq!(a.deps, b.deps, "{tag}: dependences of task {t} differ");
        assert_eq!(a.plans, b.plans, "{tag}: plans of task {t} differ");
    }
    assert_eq!(
        serial.analysis_done, sharded.analysis_done,
        "{tag}: per-launch analysis completion times differ"
    );
    assert_eq!(serial.clocks, sharded.clocks, "{tag}: node clocks differ");
    assert_eq!(
        serial.service_clocks, sharded.service_clocks,
        "{tag}: service clocks differ"
    );
    assert_eq!(serial.counters, sharded.counters, "{tag}: counters differ");
    assert_eq!(serial.state, sharded.state, "{tag}: state sizes differ");
    assert_eq!(serial.makespan, sharded.makespan, "{tag}: makespans differ");
}

#[test]
fn stencil_sharded_matches_serial_bit_exactly() {
    let app = Stencil::new(StencilConfig {
        nodes: 4,
        vars: 2,
        with_bodies: false,
        ..StencilConfig::small(4, 8, 3)
    });
    for engine in EngineKind::all() {
        assert_identical(&app, engine, 4, true);
        assert_identical(&app, engine, 2, false);
    }
}

#[test]
fn circuit_sharded_matches_serial_bit_exactly() {
    let app = Circuit::new(CircuitConfig {
        nodes: 4,
        with_bodies: false,
        ..CircuitConfig::small(4, 3)
    });
    for engine in EngineKind::all() {
        assert_identical(&app, engine, 4, true);
        assert_identical(&app, engine, 2, false);
    }
}

#[test]
fn pennant_sharded_matches_serial_bit_exactly() {
    let app = Pennant::new(PennantConfig {
        nodes: 4,
        with_bodies: false,
        ..PennantConfig::small(4, 3)
    });
    for engine in EngineKind::all() {
        assert_identical(&app, engine, 4, true);
        assert_identical(&app, engine, 2, false);
    }
}

#[test]
fn traced_workloads_fall_back_to_serial_and_stay_identical() {
    // Inside begin/end_trace the batched driver must defer to the serial
    // path; the surrounding waves still shard. Everything stays identical.
    let app = Stencil::new(StencilConfig {
        nodes: 2,
        traced: true,
        with_bodies: false,
        ..StencilConfig::small(4, 8, 6)
    });
    assert_identical(&app, EngineKind::RayCast, 2, true);
}
