//! Invariants of the timed executor across engines and mappings.

use viz_apps::{Circuit, CircuitConfig, Workload};
use viz_runtime::{EngineKind, Runtime, RuntimeConfig, TaskId};

fn schedule(
    engine: EngineKind,
    nodes: usize,
    dcr: bool,
) -> (
    Runtime,
    viz_runtime::exec::TimedReport,
    viz_apps::WorkloadRun,
) {
    let app = Circuit::new(CircuitConfig {
        nodes,
        nodes_per_piece: 50,
        wires_per_piece: 100,
        with_bodies: false,
        ..CircuitConfig::small(6, 4)
    });
    let mut rt = Runtime::new(
        RuntimeConfig::new(engine)
            .nodes(nodes)
            .dcr(dcr)
            .validate(false),
    );
    let run = app.execute(&mut rt);
    let report = rt.timed_schedule();
    (rt, report, run)
}

#[test]
fn completion_respects_dependences_and_analysis() {
    for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
        for (nodes, dcr) in [(1, false), (3, true)] {
            let (rt, report, _) = schedule(engine, nodes, dcr);
            for t in 0..rt.num_tasks() {
                let tid = TaskId(t as u32);
                let launch = &rt.launches()[t];
                // After its dependences…
                for d in rt.dag().preds(tid) {
                    assert!(
                        report.completion[t] > report.completion[d.index()],
                        "{engine:?}: {tid:?} finished before its dependence {d:?}"
                    );
                }
                // …after its analysis, plus its own duration.
                assert!(
                    report.completion[t] >= rt.analysis_done(tid) + launch.duration_ns,
                    "{engine:?}: {tid:?} ran before its analysis completed"
                );
            }
            assert_eq!(
                report.makespan,
                report.completion.iter().copied().max().unwrap()
            );
        }
    }
}

/// Per-node GPU serialization: the tasks of one node can never finish
/// faster than the sum of their durations.
#[test]
fn gpu_throughput_bound() {
    let (rt, report, _) = schedule(EngineKind::RayCast, 3, true);
    for node in 0..3 {
        let total: u64 = rt
            .launches()
            .iter()
            .filter(|l| l.node == node)
            .map(|l| l.duration_ns)
            .sum();
        let last = rt
            .launches()
            .iter()
            .filter(|l| l.node == node)
            .map(|l| report.completion[l.id.index()])
            .max()
            .unwrap_or(0);
        assert!(
            last >= total,
            "node {node}: finished {last} < busy time {total}"
        );
    }
}

/// More nodes must never make the simulated makespan longer for the same
/// per-piece workload with DCR (weak scaling sanity at tiny scale).
#[test]
fn iteration_boundaries_are_monotone() {
    let (_, report, run) = schedule(EngineKind::RayCast, 3, true);
    let mut prev = 0;
    for end in &run.iter_end {
        let t = report.completion_through(*end);
        assert!(t >= prev, "iteration completions must be non-decreasing");
        prev = t;
    }
    assert!(report.makespan >= prev);
}

/// The analysis engines differ in simulated analysis cost but the *task
/// durations* are engine-independent: GPU busy time per node is identical
/// across engines.
#[test]
fn gpu_work_is_engine_independent() {
    let mut sums = Vec::new();
    for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
        let (rt, _, _) = schedule(engine, 3, false);
        let total: u64 = rt.launches().iter().map(|l| l.duration_ns).sum();
        sums.push(total);
    }
    assert_eq!(sums[0], sums[1]);
    assert_eq!(sums[1], sums[2]);
}
