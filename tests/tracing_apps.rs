//! Dynamic tracing across the benchmark applications: traced runs must be
//! bit-identical to untraced runs, replay launches must actually happen,
//! and the simulated analysis cost must drop.

use visibility::apps::{
    Circuit, CircuitConfig, Pennant, PennantConfig, Stencil, StencilConfig, Workload,
};
use visibility::prelude::*;
use visibility::runtime::validate::check_sufficiency;

fn run_traced_vs_plain(plain: &dyn Workload, traced: &dyn Workload, engine: EngineKind) {
    let mut rt_p = Runtime::single_node(engine);
    let run_p = plain.execute(&mut rt_p);
    let mut rt_t = Runtime::single_node(engine);
    let run_t = traced.execute(&mut rt_t);

    assert!(
        rt_t.replayed_launches() > 0,
        "{}: nothing replayed",
        plain.name()
    );
    assert!(check_sufficiency(rt_t.forest(), rt_t.launches(), rt_t.dag()).is_empty());

    let store_p = rt_p.execute_values();
    let store_t = rt_t.execute_values();
    for (a, b) in run_p.probes.iter().zip(&run_t.probes) {
        let va: Vec<f64> = store_p.inline(*a).iter().map(|(_, v)| v).collect();
        let vb: Vec<f64> = store_t.inline(*b).iter().map(|(_, v)| v).collect();
        assert_eq!(
            va,
            vb,
            "{} {engine:?}: tracing changed results",
            plain.name()
        );
    }
    // Replay must be cheaper on the simulated machine.
    assert!(
        rt_t.machine().now(0) < rt_p.machine().now(0),
        "{} {engine:?}: tracing did not reduce analysis time",
        plain.name()
    );
}

#[test]
fn stencil_traced_matches_untraced() {
    for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
        let cfg = StencilConfig::small(4, 6, 6);
        let plain = Stencil::new(cfg.clone());
        let traced = Stencil::new(StencilConfig {
            traced: true,
            ..cfg
        });
        run_traced_vs_plain(&plain, &traced, engine);
    }
}

#[test]
fn circuit_traced_matches_untraced() {
    for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
        let cfg = CircuitConfig::small(4, 6);
        let plain = Circuit::new(cfg.clone());
        let traced = Circuit::new(CircuitConfig {
            traced: true,
            ..cfg
        });
        run_traced_vs_plain(&plain, &traced, engine);
    }
}

#[test]
fn pennant_traced_matches_untraced() {
    for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
        let cfg = PennantConfig::small(3, 6);
        let plain = Pennant::new(cfg.clone());
        let traced = Pennant::new(PennantConfig {
            traced: true,
            ..cfg
        });
        run_traced_vs_plain(&plain, &traced, engine);
    }
}
