//! Cross-crate integration: all three benchmark applications, all engines,
//! several machine shapes — verified bit-exactly against their serial
//! references, with DAG soundness checked by brute force.

// Deprecated-wrapper allowlist (PR 4): still exercises `launch`/`run_batch`/
// `set_initial`/`begin_trace`; migrate to `submit` and the `try_*` forms in PR 5.
use visibility::apps::{
    Circuit, CircuitConfig, Pennant, PennantConfig, Stencil, StencilConfig, Workload,
};
use visibility::prelude::*;
use visibility::runtime::validate::check_sufficiency;

fn verify(workload: &dyn Workload, engine: EngineKind, nodes: usize, dcr: bool) {
    let mut rt = Runtime::new(RuntimeConfig::new(engine).nodes(nodes).dcr(dcr));
    let run = workload.execute(&mut rt);
    let violations = check_sufficiency(rt.forest(), rt.launches(), rt.dag());
    assert!(
        violations.is_empty(),
        "{} {engine:?} nodes={nodes} dcr={dcr}: {violations:?}",
        workload.name()
    );
    let store = rt.execute_values();
    let expect = workload.reference();
    assert_eq!(run.probes.len(), expect.len());
    for (k, (probe, exp)) in run.probes.iter().zip(&expect).enumerate() {
        let got: Vec<f64> = store.inline(*probe).iter().map(|(_, v)| v).collect();
        assert_eq!(
            &got,
            exp,
            "{} {engine:?} nodes={nodes} dcr={dcr} probe {k}",
            workload.name()
        );
    }
}

#[test]
fn stencil_all_engines_all_shapes() {
    for engine in EngineKind::all() {
        for (nodes, dcr) in [(1, false), (2, false), (4, true)] {
            let app = Stencil::new(StencilConfig {
                nodes,
                ..StencilConfig::small(4, 6, 2)
            });
            verify(&app, engine, nodes, dcr);
        }
    }
}

#[test]
fn circuit_all_engines_all_shapes() {
    for engine in EngineKind::all() {
        for (nodes, dcr) in [(1, false), (2, false), (4, true)] {
            let app = Circuit::new(CircuitConfig {
                nodes,
                ..CircuitConfig::small(4, 2)
            });
            verify(&app, engine, nodes, dcr);
        }
    }
}

#[test]
fn pennant_all_engines_all_shapes() {
    for engine in EngineKind::all() {
        for (nodes, dcr) in [(1, false), (2, false), (3, true)] {
            let app = Pennant::new(PennantConfig {
                nodes,
                ..PennantConfig::small(3, 2)
            });
            verify(&app, engine, nodes, dcr);
        }
    }
}

/// A longer stencil run: the steady-state loop must keep analysis state
/// bounded for the equivalence-set engines (ray casting coalesces; Warnock
/// stabilizes once the partitions are discovered).
#[test]
fn long_run_state_stays_bounded() {
    for engine in [EngineKind::Warnock, EngineKind::RayCast] {
        let app = Stencil::new(StencilConfig::small(4, 6, 8));
        let mut rt = Runtime::single_node(engine);
        app.execute(&mut rt);
        let sets = rt.stats().state.equivalence_sets;
        assert!(
            sets < 200,
            "{engine:?}: {sets} equivalence sets after 8 iterations"
        );
    }
}

/// Ray casting must retain no more equivalence sets than Warnock on the
/// same program (§7: dominating writes only prune).
#[test]
fn raycast_coalesces_more_than_warnock_on_apps() {
    for iterations in [2usize, 5] {
        let mut counts = Vec::new();
        for engine in [EngineKind::Warnock, EngineKind::RayCast] {
            let app = Circuit::new(CircuitConfig::small(6, iterations));
            let mut rt = Runtime::single_node(engine);
            app.execute(&mut rt);
            counts.push(rt.stats().state.equivalence_sets);
        }
        assert!(
            counts[1] <= counts[0],
            "raycast {} > warnock {} after {iterations} iterations",
            counts[1],
            counts[0]
        );
    }
}

/// Timed mode must agree across engines on *what* runs where — only the
/// analysis timing differs. The task count, DAG edge count and critical
/// path are engine-independent for these apps (engines find the same
/// precise dependences).
#[test]
fn engines_agree_on_dag_shape() {
    let mut shapes = Vec::new();
    for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
        let app = Pennant::new(PennantConfig::small(3, 3));
        let mut rt = Runtime::single_node(engine);
        app.execute(&mut rt);
        shapes.push((
            rt.num_tasks(),
            rt.dag().edge_count(),
            rt.dag().critical_path_len(),
        ));
    }
    assert_eq!(shapes[0], shapes[1]);
    assert_eq!(shapes[1], shapes[2]);
}

// ---------------------------------------------------------------------
// Random cross-engine programs (proptest): all four engines must find
// the same dependence *closure* and commit the same values, under both
// the serial and the sharded analysis driver.
// ---------------------------------------------------------------------

mod random_programs {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;
    use visibility::region::RedOpRegistry;
    use visibility::runtime::{LaunchSpec, TaskBody};

    /// One randomly drawn launch: an access kind, a partition family, and
    /// a child index (wrapped modulo the family's arity).
    #[derive(Copy, Clone, Debug)]
    struct OpSpec {
        kind: u8,
        part: u8,
        child: u8,
    }

    /// `weights = (read, write, reduce)` — relative odds of each kind.
    fn op_strategy(weights: (u32, u32, u32)) -> impl Strategy<Value = OpSpec> {
        let kind = prop_oneof![
            weights.0 => (0u8..1).boxed(),
            weights.1 => (1u8..2).boxed(),
            weights.2 => (2u8..3).boxed(),
        ];
        (kind, 0u8..4, 0u8..4).prop_map(|(kind, part, child)| OpSpec { kind, part, child })
    }

    /// Run a random program and return `(dependence closure, probe values)`.
    ///
    /// The region tree is adversarially aliased: a disjoint-complete
    /// 4-piece partition P, an aliased 3-piece partition Q whose pieces
    /// overlap each other and straddle P's boundaries, and an aliased
    /// incomplete 4-piece "ghost" partition G. `part == 3` targets the
    /// root itself.
    fn run_program(
        ops: &[OpSpec],
        engine: EngineKind,
        threads: usize,
        batch: usize,
    ) -> (Vec<Vec<bool>>, Vec<f64>) {
        let mut rt = Runtime::new(
            RuntimeConfig::new(engine)
                .nodes(2)
                .dcr(true)
                .analysis_threads(threads),
        );
        let root = rt.forest_mut().create_root("N", IndexSpace::span(0, 47));
        let f = rt.forest_mut().add_field(root, "f");
        let p_spaces: Vec<IndexSpace> = (0..4)
            .map(|i| IndexSpace::span(12 * i, 12 * i + 11))
            .collect();
        let p = rt
            .forest_mut()
            .create_partition_with_flags(root, "P", p_spaces, true, true);
        let q_spaces = vec![
            IndexSpace::span(0, 19),
            IndexSpace::span(10, 35),
            IndexSpace::span(28, 47),
        ];
        let q = rt
            .forest_mut()
            .create_partition_with_flags(root, "Q", q_spaces, false, false);
        let g_spaces: Vec<IndexSpace> = (0..4)
            .map(|i| IndexSpace::span(8 * i, 8 * i + 15))
            .collect();
        let g = rt
            .forest_mut()
            .create_partition_with_flags(root, "G", g_spaces, false, false);
        let sum = RedOpRegistry::SUM;

        let mut specs: Vec<LaunchSpec> = Vec::with_capacity(ops.len());
        for (t, op) in ops.iter().enumerate() {
            let region = match op.part {
                0 => rt.forest().subregion(p, op.child as usize % 4),
                1 => rt.forest().subregion(q, op.child as usize % 3),
                2 => rt.forest().subregion(g, op.child as usize % 4),
                _ => root,
            };
            let (req, body): (RegionRequirement, TaskBody) = match op.kind {
                0 => (
                    RegionRequirement::read(region, f),
                    Arc::new(|_: &mut [PhysicalRegion]| {}),
                ),
                1 => {
                    let val = (t + 1) as f64;
                    (
                        RegionRequirement::read_write(region, f),
                        Arc::new(move |rs: &mut [PhysicalRegion]| {
                            rs[0].update_all(|pt, _| val + 0.25 * pt.x as f64);
                        }),
                    )
                }
                _ => {
                    let contrib = 1.0 + (t % 7) as f64;
                    (
                        RegionRequirement::reduce(region, f, sum),
                        Arc::new(move |rs: &mut [PhysicalRegion]| {
                            let dom = rs[0].domain().clone();
                            for pt in dom.points() {
                                rs[0].reduce(pt, contrib);
                            }
                        }),
                    )
                }
            };
            specs.push(LaunchSpec::new(
                format!("op{t}"),
                t % 2,
                vec![req],
                1_000,
                Some(body),
            ));
        }
        // Feed the program through the driver in waves of `batch`; with
        // `threads == 1` each wave degenerates to serial launches.
        let mut rest = specs;
        while !rest.is_empty() {
            let tail = rest.split_off(rest.len().min(batch));
            rt.submit_batch(rest).unwrap();
            rest = tail;
        }

        let violations = check_sufficiency(rt.forest(), rt.launches(), rt.dag());
        assert!(violations.is_empty(), "{engine:?}: {violations:?}");

        // Transitive closure of the recorded dependences (tasks are
        // topologically ordered by id, so one forward pass suffices).
        let n = rt.num_tasks();
        let results = rt.results();
        let mut closure: Vec<Vec<bool>> = vec![vec![false; n]; n];
        for t in 0..n {
            let deps: Vec<usize> = results[t].deps.iter().map(|d| d.0 as usize).collect();
            for d in deps {
                closure[t][d] = true;
                let (head, tail) = closure.split_at_mut(t);
                for (j, reach) in head[d].iter().enumerate() {
                    if *reach {
                        tail[0][j] = true;
                    }
                }
            }
        }

        let probe = rt.inline_read(root, f).unwrap();
        let store = rt.execute_values();
        let values: Vec<f64> = store.inline(probe).iter().map(|(_, v)| v).collect();
        // Drop the probe task's row (its id differs per driver only if the
        // program length differs, which it never does — keep it anyway).
        (closure, values)
    }

    fn assert_engines_and_drivers_agree(ops: &[OpSpec]) {
        let (base_closure, base_values) = run_program(ops, EngineKind::Paint, 1, 1);
        for engine in EngineKind::all() {
            // (threads, batch): serial, sharded small waves, sharded one
            // big batch (maximal cross-launch overlap).
            for (threads, batch) in [(1, 1), (4, 5), (4, usize::MAX)] {
                let (closure, values) = run_program(ops, engine, threads, batch);
                assert_eq!(
                    closure, base_closure,
                    "{engine:?} threads={threads} batch={batch}: dependence closure \
                     diverged from serial Paint"
                );
                assert_eq!(
                    values, base_values,
                    "{engine:?} threads={threads} batch={batch}: committed values \
                     diverged from serial Paint"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Reduction-heavy random programs: long runs of same-operator
        /// reductions interleaved with occasional reads/writes exercise
        /// the engines' reduce-coalescing paths.
        #[test]
        fn reduction_heavy_programs_agree(
            ops in prop::collection::vec(op_strategy((1, 1, 6)), 1..28)
        ) {
            assert_engines_and_drivers_agree(&ops);
        }

        /// Adversarially-aliased random programs: accesses concentrate on
        /// the overlapping partitions (Q, G) and the root, so nearly every
        /// pair of launches aliases without being equal.
        #[test]
        fn aliased_programs_agree(
            ops in prop::collection::vec(op_strategy((3, 3, 2)), 1..28)
        ) {
            assert_engines_and_drivers_agree(&ops);
        }
    }
}
