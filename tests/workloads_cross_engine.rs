//! Cross-crate integration: all three benchmark applications, all engines,
//! several machine shapes — verified bit-exactly against their serial
//! references, with DAG soundness checked by brute force.

use visibility::apps::{
    Circuit, CircuitConfig, Pennant, PennantConfig, Stencil, StencilConfig, Workload,
};
use visibility::prelude::*;
use visibility::runtime::validate::check_sufficiency;

fn verify(workload: &dyn Workload, engine: EngineKind, nodes: usize, dcr: bool) {
    let mut rt = Runtime::new(RuntimeConfig::new(engine).nodes(nodes).dcr(dcr));
    let run = workload.execute(&mut rt);
    let violations = check_sufficiency(rt.forest(), rt.launches(), rt.dag());
    assert!(
        violations.is_empty(),
        "{} {engine:?} nodes={nodes} dcr={dcr}: {violations:?}",
        workload.name()
    );
    let store = rt.execute_values();
    let expect = workload.reference();
    assert_eq!(run.probes.len(), expect.len());
    for (k, (probe, exp)) in run.probes.iter().zip(&expect).enumerate() {
        let got: Vec<f64> = store.inline(*probe).iter().map(|(_, v)| v).collect();
        assert_eq!(
            &got,
            exp,
            "{} {engine:?} nodes={nodes} dcr={dcr} probe {k}",
            workload.name()
        );
    }
}

#[test]
fn stencil_all_engines_all_shapes() {
    for engine in EngineKind::all() {
        for (nodes, dcr) in [(1, false), (2, false), (4, true)] {
            let app = Stencil::new(StencilConfig {
                nodes,
                ..StencilConfig::small(4, 6, 2)
            });
            verify(&app, engine, nodes, dcr);
        }
    }
}

#[test]
fn circuit_all_engines_all_shapes() {
    for engine in EngineKind::all() {
        for (nodes, dcr) in [(1, false), (2, false), (4, true)] {
            let app = Circuit::new(CircuitConfig {
                nodes,
                ..CircuitConfig::small(4, 2)
            });
            verify(&app, engine, nodes, dcr);
        }
    }
}

#[test]
fn pennant_all_engines_all_shapes() {
    for engine in EngineKind::all() {
        for (nodes, dcr) in [(1, false), (2, false), (3, true)] {
            let app = Pennant::new(PennantConfig {
                nodes,
                ..PennantConfig::small(3, 2)
            });
            verify(&app, engine, nodes, dcr);
        }
    }
}

/// A longer stencil run: the steady-state loop must keep analysis state
/// bounded for the equivalence-set engines (ray casting coalesces; Warnock
/// stabilizes once the partitions are discovered).
#[test]
fn long_run_state_stays_bounded() {
    for engine in [EngineKind::Warnock, EngineKind::RayCast] {
        let app = Stencil::new(StencilConfig::small(4, 6, 8));
        let mut rt = Runtime::single_node(engine);
        app.execute(&mut rt);
        let sets = rt.state_size().equivalence_sets;
        assert!(
            sets < 200,
            "{engine:?}: {sets} equivalence sets after 8 iterations"
        );
    }
}

/// Ray casting must retain no more equivalence sets than Warnock on the
/// same program (§7: dominating writes only prune).
#[test]
fn raycast_coalesces_more_than_warnock_on_apps() {
    for iterations in [2usize, 5] {
        let mut counts = Vec::new();
        for engine in [EngineKind::Warnock, EngineKind::RayCast] {
            let app = Circuit::new(CircuitConfig::small(6, iterations));
            let mut rt = Runtime::single_node(engine);
            app.execute(&mut rt);
            counts.push(rt.state_size().equivalence_sets);
        }
        assert!(
            counts[1] <= counts[0],
            "raycast {} > warnock {} after {iterations} iterations",
            counts[1],
            counts[0]
        );
    }
}

/// Timed mode must agree across engines on *what* runs where — only the
/// analysis timing differs. The task count, DAG edge count and critical
/// path are engine-independent for these apps (engines find the same
/// precise dependences).
#[test]
fn engines_agree_on_dag_shape() {
    let mut shapes = Vec::new();
    for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
        let app = Pennant::new(PennantConfig::small(3, 3));
        let mut rt = Runtime::single_node(engine);
        app.execute(&mut rt);
        shapes.push((
            rt.num_tasks(),
            rt.dag().edge_count(),
            rt.dag().critical_path_len(),
        ));
    }
    assert_eq!(shapes[0], shapes[1]);
    assert_eq!(shapes[1], shapes[2]);
}
